#include <gtest/gtest.h>

#include <atomic>

#include "core/iq_server.h"
#include "casql/query_cache.h"
#include "util/worker_group.h"

namespace iq::casql {
namespace {

using sql::QueryResult;
using sql::Row;
using sql::SchemaBuilder;
using sql::Transaction;
using sql::V;

// ---- result-set codec -----------------------------------------------------

TEST(ResultSetCodec, RoundTripsMixedTypes) {
  QueryResult r;
  r.columns = {"id", "name", "note"};
  r.rows.push_back({V(1), V("alice"), V()});
  r.rows.push_back({V(-42), V(""), V("x;y:z\nw")});  // hostile separators
  QueryResult decoded;
  ASSERT_TRUE(DecodeResultSet(EncodeResultSet(r), &decoded));
  EXPECT_EQ(decoded.columns, r.columns);
  EXPECT_EQ(decoded.rows, r.rows);
}

TEST(ResultSetCodec, RoundTripsEmptyResult) {
  QueryResult r;
  r.columns = {"a"};
  QueryResult decoded;
  ASSERT_TRUE(DecodeResultSet(EncodeResultSet(r), &decoded));
  EXPECT_TRUE(decoded.rows.empty());
  EXPECT_EQ(decoded.columns, r.columns);
}

TEST(ResultSetCodec, RejectsGarbage) {
  QueryResult out;
  EXPECT_FALSE(DecodeResultSet("", &out));
  EXPECT_FALSE(DecodeResultSet("bogus", &out));
  EXPECT_FALSE(DecodeResultSet("R1,1\nC1:a;\nI5", &out));       // missing ; \n
  EXPECT_FALSE(DecodeResultSet("R2,1\nC1:a;\nI5;\n", &out));    // short rows
  QueryResult ok;
  ok.columns = {"a"};
  ok.rows.push_back({V(1)});
  std::string enc = EncodeResultSet(ok);
  EXPECT_FALSE(DecodeResultSet(enc + "trailing", &out));
}

// ---- the cache ---------------------------------------------------------------

class QueryCacheTest : public ::testing::Test {
 protected:
  QueryCacheTest() : cache_(db_, server_) {
    db_.CreateTable(SchemaBuilder("Users")
                        .AddInt("id")
                        .AddText("name")
                        .AddInt("score")
                        .PrimaryKey({"id"})
                        .Build());
    db_.CreateTable(SchemaBuilder("Items")
                        .AddInt("id")
                        .AddInt("owner")
                        .PrimaryKey({"id"})
                        .Build());
    auto txn = db_.Begin();
    for (int i = 0; i < 5; ++i) {
      txn->Insert("Users", {V(i), V("u" + std::to_string(i)), V(i * 10)});
      txn->Insert("Items", {V(i), V(i % 2)});
    }
    txn->Commit();
  }

  sql::Database db_;
  IQServer server_;
  QueryCache cache_;
};

TEST_F(QueryCacheTest, FirstSelectMissesSecondHits) {
  auto r1 = cache_.Select("SELECT name FROM Users WHERE id = ?", {V(2)});
  ASSERT_EQ(r1.rows.size(), 1u);
  EXPECT_EQ(r1.rows[0][0], V("u2"));
  auto r2 = cache_.Select("SELECT name FROM Users WHERE id = ?", {V(2)});
  EXPECT_EQ(r2.rows, r1.rows);
  auto stats = cache_.GetStats();
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_EQ(stats.result_misses, 1u);
}

TEST_F(QueryCacheTest, DifferentParamsAreDifferentEntries) {
  cache_.Select("SELECT name FROM Users WHERE id = ?", {V(1)});
  auto r = cache_.Select("SELECT name FROM Users WHERE id = ?", {V(3)});
  EXPECT_EQ(r.rows[0][0], V("u3"));
  EXPECT_EQ(cache_.GetStats().result_misses, 2u);
}

TEST_F(QueryCacheTest, WriteRetiresCachedQueries) {
  auto before = cache_.Select("SELECT score FROM Users WHERE id = ?", {V(1)});
  EXPECT_EQ(before.rows[0][0], V(10));
  ASSERT_TRUE(cache_.Write({"Users"}, [](Transaction& txn) {
    return sql::Query(txn, "UPDATE Users SET score = 99 WHERE id = 1").ok();
  }));
  auto after = cache_.Select("SELECT score FROM Users WHERE id = ?", {V(1)});
  EXPECT_EQ(after.rows[0][0], V(99));
}

TEST_F(QueryCacheTest, WriteRetiresWholeTableKeyspace) {
  cache_.Select("SELECT name FROM Users WHERE id = ?", {V(0)});
  cache_.Select("SELECT name FROM Users WHERE id = ?", {V(1)});
  cache_.Select("SELECT * FROM Users WHERE score >= 0");
  cache_.Write({"Users"}, [](Transaction& txn) {
    return sql::Query(txn, "UPDATE Users SET name = 'renamed' WHERE id = 0").ok();
  });
  // Every Users query recomputes (misses), including unrelated ones.
  auto before_misses = cache_.GetStats().result_misses;
  cache_.Select("SELECT name FROM Users WHERE id = ?", {V(1)});
  EXPECT_EQ(cache_.GetStats().result_misses, before_misses + 1);
}

TEST_F(QueryCacheTest, OtherTablesUnaffectedByWrite) {
  cache_.Select("SELECT * FROM Items WHERE owner = ?", {V(0)});
  cache_.Write({"Users"}, [](Transaction& txn) {
    return sql::Query(txn, "UPDATE Users SET score = 1 WHERE id = 1").ok();
  });
  auto before_hits = cache_.GetStats().result_hits;
  cache_.Select("SELECT * FROM Items WHERE owner = ?", {V(0)});
  EXPECT_EQ(cache_.GetStats().result_hits, before_hits + 1);
}

TEST_F(QueryCacheTest, FailedWriteRollsBackAndKeepsCache) {
  cache_.Select("SELECT score FROM Users WHERE id = ?", {V(1)});
  EXPECT_FALSE(cache_.Write({"Users"}, [](Transaction& txn) {
    sql::Query(txn, "UPDATE Users SET score = 123 WHERE id = 1");
    return false;  // business-rule abort
  }));
  auto r = cache_.Select("SELECT score FROM Users WHERE id = ?", {V(1)});
  EXPECT_EQ(r.rows[0][0], V(10));  // neither store changed
  EXPECT_EQ(cache_.GetStats().result_hits, 1u);  // cache not retired
}

TEST_F(QueryCacheTest, NonSelectStatementsExecuteUncached) {
  auto r = cache_.Select("UPDATE Users SET score = 5 WHERE id = 4");
  EXPECT_TRUE(r.ok());
  auto check = cache_.Select("SELECT score FROM Users WHERE id = ?", {V(4)});
  EXPECT_EQ(check.rows[0][0], V(5));
}

TEST_F(QueryCacheTest, MultiTableWriteRetiresAll) {
  cache_.Select("SELECT name FROM Users WHERE id = ?", {V(0)});
  cache_.Select("SELECT * FROM Items WHERE owner = ?", {V(0)});
  cache_.Write({"Users", "Items"}, [](Transaction& txn) {
    return sql::Query(txn, "UPDATE Users SET score = 7 WHERE id = 0").ok() &&
           sql::Query(txn, "UPDATE Items SET owner = 3 WHERE id = 0").ok();
  });
  auto before_misses = cache_.GetStats().result_misses;
  cache_.Select("SELECT name FROM Users WHERE id = ?", {V(0)});
  cache_.Select("SELECT * FROM Items WHERE owner = ?", {V(0)});
  EXPECT_EQ(cache_.GetStats().result_misses, before_misses + 2);
}

TEST_F(QueryCacheTest, ConcurrentReadersAndWritersNeverServeStaleRows) {
  // Writers keep bumping one user's score through the cache's Write();
  // readers Select it through the cache. Every observed score must be
  // consistent with the interval check: here simplified to "monotonically
  // non-decreasing", since scores only grow.
  std::atomic<bool> failed{false};
  WorkerGroup group;
  group.Start(4, [&](int id, const std::atomic<bool>&) {
    if (id == 0) {
      for (int i = 0; i < 50; ++i) {
        cache_.Write({"Users"}, [](Transaction& txn) {
          return sql::Query(txn,
                            "UPDATE Users SET score = score + 1 WHERE id = 2")
              .ok();
        });
      }
    } else {
      std::int64_t last = -1;
      for (int i = 0; i < 100; ++i) {
        auto r = cache_.Select("SELECT score FROM Users WHERE id = ?", {V(2)});
        if (r.rows.size() != 1) {
          failed.store(true);
          continue;
        }
        std::int64_t score = *sql::AsInt(r.rows[0][0]);
        if (score < last) failed.store(true);  // went backwards: stale
        last = score;
      }
    }
  });
  group.StopAndJoin();
  EXPECT_FALSE(failed.load());
  // Final convergence.
  auto final_read = cache_.Select("SELECT score FROM Users WHERE id = ?", {V(2)});
  EXPECT_EQ(final_read.rows[0][0], V(20 + 50));
}

TEST_F(QueryCacheTest, VersionRefreshCountsTracked) {
  cache_.Select("SELECT * FROM Users WHERE id = ?", {V(0)});
  EXPECT_EQ(cache_.GetStats().version_refreshes, 1u);  // first sentinel fill
  cache_.Write({"Users"}, [](Transaction& txn) {
    return sql::Query(txn, "UPDATE Users SET score = 2 WHERE id = 2").ok();
  });
  cache_.Select("SELECT * FROM Users WHERE id = ?", {V(0)});
  EXPECT_EQ(cache_.GetStats().version_refreshes, 2u);  // retired + refilled
}

}  // namespace
}  // namespace iq::casql
