#include <gtest/gtest.h>

#include "rdbms/table.h"

namespace iq::sql {
namespace {

TableSchema TwoColSchema() {
  return SchemaBuilder("T").AddInt("id").AddText("v").PrimaryKey({"id"}).Build();
}

TableSchema IndexedSchema() {
  return SchemaBuilder("T")
      .AddInt("id")
      .AddInt("group_id")
      .AddText("v")
      .PrimaryKey({"id"})
      .Index("group_id")
      .Build();
}

TEST(Schema, ColumnIndexFindsByName) {
  auto s = TwoColSchema();
  EXPECT_EQ(s.ColumnIndex("id"), 0u);
  EXPECT_EQ(s.ColumnIndex("v"), 1u);
  EXPECT_FALSE(s.ColumnIndex("missing"));
}

TEST(Schema, PrimaryKeyExtraction) {
  auto s = SchemaBuilder("F")
               .AddInt("a")
               .AddInt("b")
               .AddInt("c")
               .PrimaryKey({"a", "b"})
               .Build();
  Row row{V(1), V(2), V(3)};
  EXPECT_EQ(s.PrimaryKeyOf(row), (Row{V(1), V(2)}));
}

TEST(Schema, RowMatchesChecksArityAndTypes) {
  auto s = TwoColSchema();
  EXPECT_TRUE(s.RowMatches({V(1), V("x")}));
  EXPECT_TRUE(s.RowMatches({V(1), V()}));  // NULL allowed
  EXPECT_FALSE(s.RowMatches({V(1)}));
  EXPECT_FALSE(s.RowMatches({V("x"), V("y")}));
}

TEST(Table, InsertThenReadAtLaterSnapshot) {
  Table t(TwoColSchema());
  TxnCtx writer{1, 0};
  EXPECT_EQ(t.InsertIntent(writer, {V(1), V("a")}), TxnResult::kOk);
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx reader{2, 1};
  auto row = t.Read(reader, {V(1)});
  ASSERT_TRUE(row);
  EXPECT_EQ((*row)[1], V("a"));
}

TEST(Table, UncommittedInsertInvisibleToOthersVisibleToSelf) {
  Table t(TwoColSchema());
  TxnCtx writer{1, 0};
  t.InsertIntent(writer, {V(1), V("a")});
  TxnCtx other{2, 0};
  EXPECT_FALSE(t.Read(other, {V(1)}));
  EXPECT_TRUE(t.Read(writer, {V(1)}));  // read-your-writes
}

TEST(Table, SnapshotDoesNotSeeLaterCommit) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx old_reader{5, 0};  // snapshot before commit ts 1
  EXPECT_FALSE(t.Read(old_reader, {V(1)}));
  TxnCtx new_reader{6, 1};
  EXPECT_TRUE(t.Read(new_reader, {V(1)}));
}

TEST(Table, UpdateCreatesNewVersionOldSnapshotSeesOld) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx w2{2, 1};
  EXPECT_EQ(t.UpdateIntent(w2, {V(1)}, [](Row& r) { r[1] = V("b"); }),
            TxnResult::kOk);
  t.InstallCommit(2, {V(1)}, 2);
  EXPECT_EQ((*t.Read(TxnCtx{3, 1}, {V(1)}))[1], V("a"));
  EXPECT_EQ((*t.Read(TxnCtx{4, 2}, {V(1)}))[1], V("b"));
}

TEST(Table, DeleteHidesFromLaterSnapshots) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx w2{2, 1};
  EXPECT_EQ(t.DeleteIntent(w2, {V(1)}), TxnResult::kOk);
  t.InstallCommit(2, {V(1)}, 2);
  EXPECT_TRUE(t.Read(TxnCtx{3, 1}, {V(1)}));
  EXPECT_FALSE(t.Read(TxnCtx{4, 2}, {V(1)}));
}

TEST(Table, WriteWriteConflictOnPendingIntent) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx w2{2, 1};
  TxnCtx w3{3, 1};
  EXPECT_EQ(t.UpdateIntent(w2, {V(1)}, [](Row& r) { r[1] = V("b"); }),
            TxnResult::kOk);
  EXPECT_EQ(t.UpdateIntent(w3, {V(1)}, [](Row& r) { r[1] = V("c"); }),
            TxnResult::kConflict);
}

TEST(Table, FirstCommitterWinsAgainstStaleSnapshot) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  // w2 and w3 both start at snapshot 1; w2 commits first.
  TxnCtx w2{2, 1};
  t.UpdateIntent(w2, {V(1)}, [](Row& r) { r[1] = V("b"); });
  t.InstallCommit(2, {V(1)}, 2);
  TxnCtx w3{3, 1};
  EXPECT_EQ(t.UpdateIntent(w3, {V(1)}, [](Row& r) { r[1] = V("c"); }),
            TxnResult::kConflict);
}

TEST(Table, AbortReleasesIntent) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx w2{2, 1};
  t.UpdateIntent(w2, {V(1)}, [](Row& r) { r[1] = V("b"); });
  t.AbortIntent(2, {V(1)});
  TxnCtx w3{3, 1};
  EXPECT_EQ(t.UpdateIntent(w3, {V(1)}, [](Row& r) { r[1] = V("c"); }),
            TxnResult::kOk);
}

TEST(Table, AbortedFreshInsertLeavesNoTrace) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.AbortIntent(1, {V(1)});
  EXPECT_EQ(t.ChainCount(), 0u);
  TxnCtx w2{2, 0};
  EXPECT_EQ(t.InsertIntent(w2, {V(1), V("b")}), TxnResult::kOk);
}

TEST(Table, DuplicateInsertRejected) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx w2{2, 1};
  EXPECT_EQ(t.InsertIntent(w2, {V(1), V("b")}), TxnResult::kDuplicateKey);
}

TEST(Table, ReinsertAfterDeleteAllowed) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx w2{2, 1};
  t.DeleteIntent(w2, {V(1)});
  t.InstallCommit(2, {V(1)}, 2);
  TxnCtx w3{3, 2};
  EXPECT_EQ(t.InsertIntent(w3, {V(1), V("b")}), TxnResult::kOk);
  t.InstallCommit(3, {V(1)}, 3);
  EXPECT_EQ((*t.Read(TxnCtx{4, 3}, {V(1)}))[1], V("b"));
}

TEST(Table, UpdateMissingRowIsNotFound) {
  Table t(TwoColSchema());
  TxnCtx w{1, 0};
  EXPECT_EQ(t.UpdateIntent(w, {V(9)}, [](Row&) {}), TxnResult::kNotFound);
  EXPECT_EQ(t.DeleteIntent(w, {V(9)}), TxnResult::kNotFound);
}

TEST(Table, PrimaryKeyMutationRejected) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx w2{2, 1};
  EXPECT_EQ(t.UpdateIntent(w2, {V(1)}, [](Row& r) { r[0] = V(2); }),
            TxnResult::kInvalidRow);
}

TEST(Table, InvalidRowShapeRejected) {
  Table t(TwoColSchema());
  TxnCtx w{1, 0};
  EXPECT_EQ(t.InsertIntent(w, {V(1)}), TxnResult::kInvalidRow);
  EXPECT_EQ(t.InsertIntent(w, {V("x"), V("y")}), TxnResult::kInvalidRow);
}

TEST(Table, SecondaryIndexLookup) {
  Table t(IndexedSchema());
  TxnCtx w{1, 0};
  for (int i = 0; i < 10; ++i) {
    t.InsertIntent(w, {V(i), V(i % 3), V("v" + std::to_string(i))});
    t.InstallCommit(1, {V(i)}, 1);
  }
  TxnCtx r{2, 1};
  auto rows = t.ReadWhereEq(r, 1, V(0));
  EXPECT_EQ(rows.size(), 4u);  // ids 0,3,6,9
  for (const auto& row : rows) EXPECT_EQ(row[1], V(0));
}

TEST(Table, IndexReflectsUpdates) {
  Table t(IndexedSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V(10), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx w2{2, 1};
  t.UpdateIntent(w2, {V(1)}, [](Row& r) { r[1] = V(20); });
  t.InstallCommit(2, {V(1)}, 2);
  TxnCtx r{3, 2};
  EXPECT_TRUE(t.ReadWhereEq(r, 1, V(10)).empty());
  EXPECT_EQ(t.ReadWhereEq(r, 1, V(20)).size(), 1u);
}

TEST(Table, IndexRespectsSnapshots) {
  Table t(IndexedSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V(10), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx w2{2, 1};
  t.UpdateIntent(w2, {V(1)}, [](Row& r) { r[1] = V(20); });
  t.InstallCommit(2, {V(1)}, 2);
  // The old snapshot still finds the row under its old indexed value.
  TxnCtx old_reader{3, 1};
  EXPECT_EQ(t.ReadWhereEq(old_reader, 1, V(10)).size(), 1u);
  EXPECT_TRUE(t.ReadWhereEq(old_reader, 1, V(20)).empty());
}

TEST(Table, ScanAppliesPredicateToVisibleRows) {
  Table t(TwoColSchema());
  TxnCtx w{1, 0};
  for (int i = 0; i < 20; ++i) {
    t.InsertIntent(w, {V(i), V("v")});
    t.InstallCommit(1, {V(i)}, 1);
  }
  TxnCtx r{2, 1};
  auto rows = t.Scan(r, [](const Row& row) { return *AsInt(row[0]) < 5; });
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_EQ(t.VisibleCount(r), 20u);
}

TEST(Table, VacuumReclaimsDeadVersions) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  for (Timestamp ts = 2; ts <= 10; ++ts) {
    TxnCtx w{ts, ts - 1};
    t.UpdateIntent(w, {V(1)}, [](Row& r) { r[1] = V("x"); });
    t.InstallCommit(ts, {V(1)}, ts);
  }
  std::size_t reclaimed = t.Vacuum(10);
  EXPECT_EQ(reclaimed, 9u);
  EXPECT_TRUE(t.Read(TxnCtx{99, 10}, {V(1)}));
}

TEST(Table, VacuumKeepsVersionsVisibleToActiveSnapshots) {
  Table t(TwoColSchema());
  TxnCtx w1{1, 0};
  t.InsertIntent(w1, {V(1), V("a")});
  t.InstallCommit(1, {V(1)}, 1);
  TxnCtx w2{2, 1};
  t.UpdateIntent(w2, {V(1)}, [](Row& r) { r[1] = V("b"); });
  t.InstallCommit(2, {V(1)}, 2);
  t.Vacuum(1);  // oldest active snapshot still needs version at ts 1
  EXPECT_EQ((*t.Read(TxnCtx{5, 1}, {V(1)}))[1], V("a"));
}

TEST(Value, ToStringFormats) {
  EXPECT_EQ(ToString(V()), "NULL");
  EXPECT_EQ(ToString(V(42)), "42");
  EXPECT_EQ(ToString(V("hi")), "'hi'");
  EXPECT_EQ(ToString(Row{V(1), V("x")}), "(1, 'x')");
}

TEST(Value, AccessorsAndNullChecks) {
  EXPECT_TRUE(IsNull(V()));
  EXPECT_FALSE(IsNull(V(0)));
  EXPECT_EQ(AsInt(V(7)), 7);
  EXPECT_FALSE(AsInt(V("x")));
  EXPECT_EQ(AsText(V("x")), "x");
  EXPECT_FALSE(AsText(V(7)));
}

TEST(Value, HashingConsistentWithEquality) {
  ValueHash h;
  EXPECT_EQ(h(V(42)), h(V(42)));
  EXPECT_EQ(h(V("abc")), h(V("abc")));
  RowHash rh;
  EXPECT_EQ(rh({V(1), V("a")}), rh({V(1), V("a")}));
}

}  // namespace
}  // namespace iq::sql
