#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "rdbms/database.h"

namespace iq::sql {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable(SchemaBuilder("T")
                        .AddInt("id")
                        .AddInt("n")
                        .AddText("v")
                        .PrimaryKey({"id"})
                        .Build());
    auto txn = db_.Begin();
    for (int i = 0; i < 10; ++i) {
      txn->Insert("T", {V(i), V(0), V("init")});
    }
    ASSERT_EQ(txn->Commit(), TxnResult::kOk);
  }

  std::int64_t ReadN(int id) {
    auto txn = db_.Begin();
    auto row = txn->SelectByPk("T", {V(id)});
    txn->Rollback();
    return row ? *AsInt((*row)[1]) : -1;
  }

  Database db_;
};

TEST_F(DatabaseTest, CommitMakesWritesDurable) {
  auto txn = db_.Begin();
  EXPECT_EQ(txn->UpdateByPk("T", {V(1)}, {{"n", V(42)}}), TxnResult::kOk);
  EXPECT_EQ(txn->Commit(), TxnResult::kOk);
  EXPECT_EQ(ReadN(1), 42);
}

TEST_F(DatabaseTest, RollbackDiscardsWrites) {
  auto txn = db_.Begin();
  txn->UpdateByPk("T", {V(1)}, {{"n", V(42)}});
  txn->Rollback();
  EXPECT_EQ(ReadN(1), 0);
}

TEST_F(DatabaseTest, DestructorRollsBackActiveTxn) {
  {
    auto txn = db_.Begin();
    txn->UpdateByPk("T", {V(1)}, {{"n", V(42)}});
  }
  EXPECT_EQ(ReadN(1), 0);
}

TEST_F(DatabaseTest, SnapshotIsolationHidesConcurrentCommit) {
  auto reader = db_.Begin();  // snapshot taken here
  auto writer = db_.Begin();
  writer->UpdateByPk("T", {V(1)}, {{"n", V(99)}});
  writer->Commit();
  // The reader still sees the pre-commit value (repeatable read).
  auto row = reader->SelectByPk("T", {V(1)});
  EXPECT_EQ(*AsInt((*row)[1]), 0);
  // A new transaction sees the new value.
  EXPECT_EQ(ReadN(1), 99);
}

TEST_F(DatabaseTest, ReadYourOwnWrites) {
  auto txn = db_.Begin();
  txn->UpdateByPk("T", {V(1)}, {{"n", V(7)}});
  auto row = txn->SelectByPk("T", {V(1)});
  EXPECT_EQ(*AsInt((*row)[1]), 7);
  txn->Rollback();
}

TEST_F(DatabaseTest, WriteWriteConflictDoomsSecondWriter) {
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  EXPECT_EQ(t1->UpdateByPk("T", {V(1)}, {{"n", V(1)}}), TxnResult::kOk);
  EXPECT_EQ(t2->UpdateByPk("T", {V(1)}, {{"n", V(2)}}), TxnResult::kConflict);
  EXPECT_EQ(t2->state(), Transaction::State::kAborted);
  EXPECT_EQ(t1->Commit(), TxnResult::kOk);
  EXPECT_EQ(ReadN(1), 1);
}

TEST_F(DatabaseTest, FirstCommitterWins) {
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  EXPECT_EQ(t1->UpdateByPk("T", {V(1)}, {{"n", V(1)}}), TxnResult::kOk);
  EXPECT_EQ(t1->Commit(), TxnResult::kOk);
  // t2's snapshot predates t1's commit: its write must conflict.
  EXPECT_EQ(t2->UpdateByPk("T", {V(1)}, {{"n", V(2)}}), TxnResult::kConflict);
}

TEST_F(DatabaseTest, DisjointWritesBothCommit) {
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  EXPECT_EQ(t1->UpdateByPk("T", {V(1)}, {{"n", V(1)}}), TxnResult::kOk);
  EXPECT_EQ(t2->UpdateByPk("T", {V(2)}, {{"n", V(2)}}), TxnResult::kOk);
  EXPECT_EQ(t1->Commit(), TxnResult::kOk);
  EXPECT_EQ(t2->Commit(), TxnResult::kOk);
  EXPECT_EQ(ReadN(1), 1);
  EXPECT_EQ(ReadN(2), 2);
}

TEST_F(DatabaseTest, AbortedTxnRejectsFurtherOps) {
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  t1->UpdateByPk("T", {V(1)}, {{"n", V(1)}});
  t2->UpdateByPk("T", {V(1)}, {{"n", V(2)}});  // conflicts, dooms t2
  EXPECT_EQ(t2->Insert("T", {V(100), V(0), V("x")}), TxnResult::kAborted);
  EXPECT_EQ(t2->Commit(), TxnResult::kAborted);
}

TEST_F(DatabaseTest, CommitTimestampsIncrease) {
  auto t1 = db_.Begin();
  t1->UpdateByPk("T", {V(1)}, {{"n", V(1)}});
  t1->Commit();
  auto t2 = db_.Begin();
  t2->UpdateByPk("T", {V(2)}, {{"n", V(2)}});
  t2->Commit();
  EXPECT_LT(t1->commit_ts(), t2->commit_ts());
}

TEST_F(DatabaseTest, RunTransactionRetriesOnConflict) {
  // A competing writer holds an intent on row 1, so the first attempt of
  // the RunTransaction body conflicts; the blocker then commits, letting
  // the retry succeed against a fresh snapshot.
  auto blocker = db_.Begin();
  blocker->UpdateByPk("T", {V(1)}, {{"n", V(50)}});
  int attempts = 0;
  bool committed = db_.RunTransaction(
      [&](Transaction& txn) {
        ++attempts;
        TxnResult r = txn.UpdateByPk("T", {V(1)}, {{"n", V(60)}});
        if (attempts == 1) {
          EXPECT_EQ(r, TxnResult::kConflict);
          blocker->Commit();
        }
        return true;
      },
      10);
  EXPECT_TRUE(committed);
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(ReadN(1), 60);
}

TEST_F(DatabaseTest, RunTransactionBodyFalseMeansRollback) {
  bool committed = db_.RunTransaction([&](Transaction& txn) {
    txn.UpdateByPk("T", {V(1)}, {{"n", V(5)}});
    return false;
  });
  EXPECT_FALSE(committed);
  EXPECT_EQ(ReadN(1), 0);
}

TEST_F(DatabaseTest, TriggersFireInsideDml) {
  int fired = 0;
  db_.RegisterTrigger("T", DmlOp::kUpdate,
                      [&](Transaction&, const TriggerEvent& e) {
                        ++fired;
                        EXPECT_EQ(e.table, "T");
                        ASSERT_NE(e.old_row, nullptr);
                        ASSERT_NE(e.new_row, nullptr);
                        EXPECT_EQ(*AsInt((*e.old_row)[1]), 0);
                        EXPECT_EQ(*AsInt((*e.new_row)[1]), 33);
                      });
  auto txn = db_.Begin();
  txn->UpdateByPk("T", {V(3)}, {{"n", V(33)}});
  txn->Commit();
  EXPECT_EQ(fired, 1);
}

TEST_F(DatabaseTest, InsertAndDeleteTriggers) {
  int inserts = 0, deletes = 0;
  db_.RegisterTrigger("T", DmlOp::kInsert,
                      [&](Transaction&, const TriggerEvent&) { ++inserts; });
  db_.RegisterTrigger("T", DmlOp::kDelete,
                      [&](Transaction&, const TriggerEvent&) { ++deletes; });
  auto txn = db_.Begin();
  txn->Insert("T", {V(100), V(0), V("x")});
  txn->DeleteByPk("T", {V(100)});
  txn->Commit();
  EXPECT_EQ(inserts, 1);
  EXPECT_EQ(deletes, 1);
  db_.ClearTriggers();
}

TEST_F(DatabaseTest, TriggerDoesNotFireOnFailedDml) {
  int fired = 0;
  db_.RegisterTrigger("T", DmlOp::kInsert,
                      [&](Transaction&, const TriggerEvent&) { ++fired; });
  auto txn = db_.Begin();
  EXPECT_EQ(txn->Insert("T", {V(1), V(0), V("dup")}), TxnResult::kDuplicateKey);
  txn->Rollback();
  EXPECT_EQ(fired, 0);
  db_.ClearTriggers();
}

TEST_F(DatabaseTest, StatsTrackLifecycle) {
  auto before = db_.GetStats();
  auto txn = db_.Begin();
  txn->UpdateByPk("T", {V(1)}, {{"n", V(1)}});
  txn->Commit();
  auto t2 = db_.Begin();
  t2->Rollback();
  auto after = db_.GetStats();
  EXPECT_EQ(after.txns_started - before.txns_started, 2u);
  EXPECT_EQ(after.txns_committed - before.txns_committed, 1u);
  EXPECT_EQ(after.txns_aborted - before.txns_aborted, 1u);
}

TEST_F(DatabaseTest, VacuumPreservesCorrectness) {
  for (int round = 0; round < 5; ++round) {
    auto txn = db_.Begin();
    txn->UpdateByPk("T", {V(1)}, {{"n", V(round)}});
    txn->Commit();
  }
  EXPECT_GT(db_.Vacuum(), 0u);
  EXPECT_EQ(ReadN(1), 4);
}

TEST_F(DatabaseTest, ReadDelayConfigSlowsReads) {
  Database slow({.read_delay = 2 * kNanosPerMilli,
                 .write_delay = 0,
                 .commit_delay = 0,
                 .clock = nullptr});
  slow.CreateTable(
      SchemaBuilder("S").AddInt("id").PrimaryKey({"id"}).Build());
  auto txn = slow.Begin();
  Nanos t0 = SteadyClock::Instance().Now();
  txn->SelectByPk("S", {V(1)});
  EXPECT_GE(SteadyClock::Instance().Now() - t0, 2 * kNanosPerMilli);
}

// Property: under concurrent increments via RunTransaction, the final
// counter equals the number of successful commits - first-committer-wins
// never loses an update. (It is NOT starvation-free: a session may exhaust
// its retry budget under extreme single-row contention, like any
// optimistic engine, so we assert lost-update-freedom plus a high success
// floor rather than wait-freedom.)
TEST_F(DatabaseTest, ConcurrentIncrementsNeverLoseUpdates) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        bool ok = db_.RunTransaction(
            [&](Transaction& txn) {
              return txn.UpdateByPk("T", {V(5)}, [](Row& row) {
                       row[1] = V(*AsInt(row[1]) + 1);
                     }) == TxnResult::kOk;
            },
            5000);
        if (ok) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ReadN(5), committed.load());  // the invariant: nothing lost
  EXPECT_GE(committed.load(), kThreads * kIncrements * 3 / 4);
}

}  // namespace
}  // namespace iq::sql
