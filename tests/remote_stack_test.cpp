// The full CASQL stack over the wire: the casql session layer and the BG
// benchmark drive a RemoteBackend that reaches the IQ-Server only through
// the memcached/IQ text protocol (serialize -> parse -> dispatch ->
// serialize -> parse per operation) - the paper's actual deployment shape.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bg/workload.h"
#include "casql/casql.h"
#include "casql/query_cache.h"
#include "core/sharded_backend.h"
#include "net/channel_pool.h"
#include "net/remote_backend.h"
#include "net/tcp_server.h"

namespace iq {
namespace {

using casql::CasqlConfig;
using casql::CasqlSystem;
using casql::Consistency;
using casql::Technique;
using sql::SchemaBuilder;
using sql::Transaction;
using sql::TxnResult;
using sql::V;

class RemoteStackTest : public ::testing::Test {
 protected:
  RemoteStackTest() : channel_(server_), backend_(channel_) {}

  CasqlConfig Config(Technique t) {
    CasqlConfig cfg;
    cfg.technique = t;
    cfg.consistency = Consistency::kIQ;
    cfg.client.backoff_base = 20 * kNanosPerMicro;
    cfg.client.backoff_cap = kNanosPerMilli;
    return cfg;
  }

  IQServer server_;
  net::LoopbackChannel channel_;
  net::RemoteBackend backend_;
};

TEST_F(RemoteStackTest, ReadThroughSessionOverTheWire) {
  sql::Database db;
  db.CreateTable(SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
  {
    auto txn = db.Begin();
    txn->Insert("T", {V(1), V(7)});
    txn->Commit();
  }
  CasqlSystem system(db, backend_, Config(Technique::kRefresh));
  auto conn = system.Connect();
  auto compute = [](Transaction& txn) -> std::optional<std::string> {
    auto row = txn.SelectByPk("T", {V(1)});
    if (!row) return std::nullopt;
    return std::to_string(*sql::AsInt((*row)[1]));
  };
  auto miss = conn->Read("K", compute);
  EXPECT_TRUE(miss.computed);
  EXPECT_EQ(miss.value, "7");
  auto hit = conn->Read("K", compute);
  EXPECT_TRUE(hit.hit);
  // The value really lives in the remote server's store.
  EXPECT_EQ(server_.store().Get("K")->value, "7");
  EXPECT_GT(channel_.requests(), 2u);  // every op crossed the wire
}

TEST_F(RemoteStackTest, WriteSessionsWorkForEveryTechnique) {
  for (Technique t : {Technique::kInvalidate, Technique::kRefresh,
                      Technique::kIncremental}) {
    sql::Database db;
    db.CreateTable(
        SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
    {
      auto txn = db.Begin();
      txn->Insert("T", {V(1), V(0)});
      txn->Commit();
    }
    server_.store().Flush();
    CasqlSystem system(db, backend_, Config(t));
    auto conn = system.Connect();
    auto compute = [](Transaction& txn) -> std::optional<std::string> {
      auto row = txn.SelectByPk("T", {V(1)});
      if (!row) return std::nullopt;
      return std::to_string(*sql::AsInt((*row)[1]));
    };
    conn->Read("K", compute);
    casql::WriteSpec spec;
    spec.body = [](Transaction& txn) {
      return txn.UpdateByPk("T", {V(1)}, [](sql::Row& row) {
               row[1] = V(*sql::AsInt(row[1]) + 1);
             }) == TxnResult::kOk;
    };
    casql::KeyUpdate u;
    u.key = "K";
    u.refresh = [](const std::optional<std::string>& old)
        -> std::optional<std::string> {
      if (!old) return std::nullopt;
      return std::to_string(std::stoll(*old) + 1);
    };
    u.delta = DeltaOp{DeltaOp::Kind::kIncr, {}, 1};
    spec.updates.push_back(std::move(u));
    EXPECT_TRUE(conn->Write(spec).committed) << casql::ToString(t);
    auto read = conn->Read("K", compute);
    ASSERT_TRUE(read.value) << casql::ToString(t);
    EXPECT_EQ(*read.value, "1") << casql::ToString(t);
  }
}

TEST_F(RemoteStackTest, QueryCacheRunsOverTheWire) {
  sql::Database db;
  db.CreateTable(SchemaBuilder("Users")
                     .AddInt("id")
                     .AddInt("score")
                     .PrimaryKey({"id"})
                     .Build());
  {
    auto txn = db.Begin();
    txn->Insert("Users", {V(1), V(10)});
    txn->Commit();
  }
  casql::QueryCache cache(db, backend_);
  auto r1 = cache.Select("SELECT score FROM Users WHERE id = ?", {V(1)});
  EXPECT_EQ(r1.rows[0][0], V(10));
  auto r2 = cache.Select("SELECT score FROM Users WHERE id = ?", {V(1)});
  EXPECT_EQ(r2.rows[0][0], V(10));
  EXPECT_EQ(cache.GetStats().result_hits, 1u);
  ASSERT_TRUE(cache.Write({"Users"}, [](Transaction& txn) {
    return sql::Query(txn, "UPDATE Users SET score = 99 WHERE id = 1").ok();
  }));
  auto r3 = cache.Select("SELECT score FROM Users WHERE id = ?", {V(1)});
  EXPECT_EQ(r3.rows[0][0], V(99));
}

TEST_F(RemoteStackTest, BgWorkloadOverTheWireHasZeroUnpredictableReads) {
  sql::Database db;
  bg::CreateBgTables(db);
  bg::GraphConfig graph{40, 4, 1, 1};
  bg::LoadGraph(db, graph);
  bg::ActionPools pools;
  pools.SeedFromGraph(graph);
  CasqlSystem system(db, backend_, Config(Technique::kRefresh));

  bg::WorkloadConfig wl;
  wl.mix = bg::HighWriteMix();
  wl.threads = 4;
  wl.duration = 150 * kNanosPerMilli;
  wl.seed = 3;
  auto result = bg::RunWorkload(system, pools, graph, wl);
  EXPECT_GT(result.actions, 50u);
  EXPECT_GT(result.validation.reads_checked, 0u);
  EXPECT_EQ(result.validation.unpredictable, 0u)
      << result.validation.StalePercent() << "% stale over the wire";
  EXPECT_GT(channel_.requests(), result.actions);  // wire traffic happened
}

TEST_F(RemoteStackTest, AuditDetectsPoisonedEntryOverTheWire) {
  sql::Database db;
  db.CreateTable(
      SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
  {
    auto txn = db.Begin();
    txn->Insert("T", {V(1), V(7)});
    txn->Commit();
  }
  CasqlConfig cfg = Config(Technique::kRefresh);
  cfg.audit_rate = 1.0;
  CasqlSystem system(db, backend_, cfg);
  auto conn = system.Connect();
  auto compute = [](Transaction& txn) -> std::optional<std::string> {
    auto row = txn.SelectByPk("T", {V(1)});
    if (!row) return std::nullopt;
    return std::to_string(*sql::AsInt((*row)[1]));
  };
  conn->Read("K", compute);
  // Corrupt the remote store directly, bypassing the lease protocol.
  server_.store().Set("K", "666");
  auto out = conn->Read("K", compute);
  EXPECT_TRUE(out.hit);
  casql::AuditStats a = system.audit_stats();
  EXPECT_GE(a.samples, 1u);
  EXPECT_GE(a.stale_reads_detected, 1u);
  // The audit QaRead/SaR round trip crossed the wire and released cleanly.
  EXPECT_EQ(server_.LeaseCount(), 0u);
}

// ---- the same stack on a 2-shard tier: one in-process child, one TCP child ----

class ShardedStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::TcpServer::Config cfg;
    cfg.workers = 2;
    tcp_ = std::make_unique<net::TcpServer>(tcp_child_, cfg);
    std::string error;
    ASSERT_TRUE(tcp_->Start(&error)) << error;
    channel_ = net::TcpChannel::Connect("127.0.0.1", tcp_->port(), &error);
    ASSERT_NE(channel_, nullptr) << error;
    remote_ = std::make_unique<net::RemoteBackend>(*channel_);
    router_ = std::make_unique<ShardedBackend>(std::vector<ShardedBackend::Shard>{
        {"local", &local_child_, 1, [this] { return local_child_.Stats(); }, {}},
        // The TCP child's counters come back over the wire, through the
        // same `stats` command an operator would use.
        {"tcp", remote_.get(), 1,
         [this] {
           return net::ParseIQStats(net::RemoteCacheClient(*channel_).Stats());
         },
         {}}});
  }

  void TearDown() override {
    router_.reset();
    remote_.reset();
    channel_.reset();
    if (tcp_) tcp_->Stop();
  }

  std::string KeyOnShard(std::size_t shard, const std::string& prefix) {
    for (int i = 0; i < 10000; ++i) {
      std::string key = prefix + std::to_string(i);
      if (router_->ShardFor(key) == shard) return key;
    }
    ADD_FAILURE() << "no key found for shard " << shard;
    return {};
  }

  CasqlConfig Config(Technique t) {
    CasqlConfig cfg;
    cfg.technique = t;
    cfg.consistency = Consistency::kIQ;
    cfg.client.backoff_base = 20 * kNanosPerMicro;
    cfg.client.backoff_cap = kNanosPerMilli;
    return cfg;
  }

  IQServer local_child_;
  IQServer tcp_child_;
  std::unique_ptr<net::TcpServer> tcp_;
  std::unique_ptr<net::TcpChannel> channel_;
  std::unique_ptr<net::RemoteBackend> remote_;
  std::unique_ptr<ShardedBackend> router_;
};

TEST_F(ShardedStackTest, AbortReleasesLeasesOnBothTransports) {
  std::string k_local = KeyOnShard(0, "a");
  std::string k_tcp = KeyOnShard(1, "b");
  router_->Set(k_local, "x");
  router_->Set(k_tcp, "y");
  SessionId tid = router_->GenID();
  ASSERT_EQ(router_->QaRead(k_local, tid).status,
            QaReadReply::Status::kGranted);
  ASSERT_EQ(router_->QaRead(k_tcp, tid).status, QaReadReply::Status::kGranted);
  EXPECT_EQ(local_child_.LeaseCount(), 1u);
  EXPECT_EQ(tcp_child_.LeaseCount(), 1u);
  router_->Abort(tid);
  EXPECT_EQ(local_child_.LeaseCount(), 0u);
  EXPECT_EQ(tcp_child_.LeaseCount(), 0u);
  EXPECT_EQ(router_->Get(k_local)->value, "x");
  EXPECT_EQ(router_->Get(k_tcp)->value, "y");
}

TEST_F(ShardedStackTest, RejectOnTcpShardReleasesLocalShard) {
  std::string k_local = KeyOnShard(0, "a");
  std::string k_tcp = KeyOnShard(1, "b");
  router_->Set(k_local, "x");
  router_->Set(k_tcp, "y");
  SessionId holder = router_->GenID();
  ASSERT_EQ(router_->QaRead(k_tcp, holder).status,
            QaReadReply::Status::kGranted);
  SessionId tid = router_->GenID();
  ASSERT_EQ(router_->QaRead(k_local, tid).status,
            QaReadReply::Status::kGranted);
  ASSERT_EQ(router_->QaRead(k_tcp, tid).status, QaReadReply::Status::kReject);
  // The reject on the TCP shard must have released the local Q lease.
  EXPECT_EQ(local_child_.LeaseCount(), 0u);
  SessionId retry = router_->GenID();
  EXPECT_EQ(router_->QaRead(k_local, retry).status,
            QaReadReply::Status::kGranted);
  router_->Abort(retry);
  router_->Abort(holder);
  EXPECT_EQ(tcp_child_.LeaseCount(), 0u);
}

TEST_F(ShardedStackTest, WriteSessionsSpanBothShardsForEveryTechnique) {
  for (Technique t : {Technique::kInvalidate, Technique::kRefresh,
                      Technique::kIncremental}) {
    sql::Database db;
    db.CreateTable(
        SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
    {
      auto txn = db.Begin();
      txn->Insert("T", {V(1), V(0)});
      txn->Commit();
    }
    local_child_.store().Flush();
    tcp_child_.store().Flush();
    // Two cached keys for the same row, placed on different shards, so one
    // write session fans out across both transports.
    std::string k_local = KeyOnShard(0, "L");
    std::string k_tcp = KeyOnShard(1, "R");
    CasqlSystem system(db, *router_, Config(t));
    auto conn = system.Connect();
    auto compute = [](Transaction& txn) -> std::optional<std::string> {
      auto row = txn.SelectByPk("T", {V(1)});
      if (!row) return std::nullopt;
      return std::to_string(*sql::AsInt((*row)[1]));
    };
    conn->Read(k_local, compute);
    conn->Read(k_tcp, compute);
    casql::WriteSpec spec;
    spec.body = [](Transaction& txn) {
      return txn.UpdateByPk("T", {V(1)}, [](sql::Row& row) {
               row[1] = V(*sql::AsInt(row[1]) + 1);
             }) == TxnResult::kOk;
    };
    for (const std::string& key : {k_local, k_tcp}) {
      casql::KeyUpdate u;
      u.key = key;
      u.refresh = [](const std::optional<std::string>& old)
          -> std::optional<std::string> {
        if (!old) return std::nullopt;
        return std::to_string(std::stoll(*old) + 1);
      };
      u.delta = DeltaOp{DeltaOp::Kind::kIncr, {}, 1};
      spec.updates.push_back(std::move(u));
    }
    EXPECT_TRUE(conn->Write(spec).committed) << casql::ToString(t);
    for (const std::string& key : {k_local, k_tcp}) {
      auto read = conn->Read(key, compute);
      ASSERT_TRUE(read.value) << casql::ToString(t);
      EXPECT_EQ(*read.value, "1") << casql::ToString(t);
    }
    EXPECT_EQ(local_child_.LeaseCount(), 0u) << casql::ToString(t);
    EXPECT_EQ(tcp_child_.LeaseCount(), 0u) << casql::ToString(t);
  }
}

TEST_F(ShardedStackTest, AuditDetectsPoisonOnEitherShard) {
  sql::Database db;
  db.CreateTable(
      SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
  {
    auto txn = db.Begin();
    txn->Insert("T", {V(1), V(7)});
    txn->Commit();
  }
  std::string k_local = KeyOnShard(0, "L");
  std::string k_tcp = KeyOnShard(1, "R");
  CasqlConfig cfg = Config(Technique::kRefresh);
  cfg.audit_rate = 1.0;
  CasqlSystem system(db, *router_, cfg);
  auto conn = system.Connect();
  auto compute = [](Transaction& txn) -> std::optional<std::string> {
    auto row = txn.SelectByPk("T", {V(1)});
    if (!row) return std::nullopt;
    return std::to_string(*sql::AsInt((*row)[1]));
  };
  conn->Read(k_local, compute);
  conn->Read(k_tcp, compute);
  // Poison one entry per shard; the auditor must see both through the
  // router, including the one behind the TCP transport.
  local_child_.store().Set(k_local, "666");
  tcp_child_.store().Set(k_tcp, "667");
  EXPECT_TRUE(conn->Read(k_local, compute).hit);
  EXPECT_TRUE(conn->Read(k_tcp, compute).hit);
  casql::AuditStats a = system.audit_stats();
  EXPECT_GE(a.samples, 2u);
  EXPECT_GE(a.stale_reads_detected, 2u);
  EXPECT_EQ(local_child_.LeaseCount(), 0u);
  EXPECT_EQ(tcp_child_.LeaseCount(), 0u);
}

// ---- server kill + restart mid-session -----------------------------------
//
// The cache front end dies under a client that cached a value and under a
// writer that left a Q lease stranded. The client must (a) fail writes fast
// while the server is gone — never committing the RDBMS around a dead
// quarantine — (b) degrade reads to pass-through, and (c) reconnect after
// the restart and serve zero stale reads once the stranded lease expires.
TEST(KillRestartTest, ClientReconnectsAndServesZeroStaleReads) {
  IQServer::Config scfg;
  scfg.lease_lifetime = 50 * kNanosPerMilli;  // stranded leases expire fast
  IQServer server(CacheStore::Config{}, scfg);
  net::TcpServer::Config tcfg;
  tcfg.workers = 2;
  auto tcp = std::make_unique<net::TcpServer>(server, tcfg);
  std::string error;
  ASSERT_TRUE(tcp->Start(&error)) << error;
  const std::uint16_t port = tcp->port();

  net::ReconnectingChannel::Config ccfg;
  ccfg.channel.connect_timeout_ms = 500;
  ccfg.channel.io_timeout_ms = 500;
  ccfg.backoff_base = kNanosPerMilli;
  ccfg.backoff_cap = 10 * kNanosPerMilli;
  net::ReconnectingChannel channel({"127.0.0.1", port}, ccfg);
  net::RemoteBackend backend(channel);

  sql::Database db;
  db.CreateTable(
      SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
  {
    auto txn = db.Begin();
    txn->Insert("T", {V(1), V(0)});
    txn->Commit();
  }
  auto compute = [](Transaction& txn) -> std::optional<std::string> {
    auto row = txn.SelectByPk("T", {V(1)});
    if (!row) return std::nullopt;
    return std::to_string(*sql::AsInt((*row)[1]));
  };
  casql::WriteSpec spec;
  spec.body = [](Transaction& txn) {
    return txn.UpdateByPk("T", {V(1)}, [](sql::Row& row) {
             row[1] = V(*sql::AsInt(row[1]) + 1);
           }) == TxnResult::kOk;
  };
  casql::KeyUpdate u;
  u.key = "K";
  spec.updates.push_back(std::move(u));

  CasqlConfig cfg;
  cfg.technique = Technique::kInvalidate;
  cfg.consistency = Consistency::kIQ;
  cfg.client.backoff_base = 20 * kNanosPerMicro;
  cfg.client.backoff_cap = kNanosPerMilli;
  CasqlConfig down_cfg = cfg;
  down_cfg.max_session_restarts = 5;  // bound the write's failure time
  CasqlSystem system(db, backend, cfg);
  CasqlSystem down_system(db, backend, down_cfg);

  {
    auto conn = system.Connect();
    auto cached = conn->Read("K", compute);
    ASSERT_TRUE(cached.value);
    EXPECT_EQ(*cached.value, "0");
  }
  // A writer quarantines "K" and dies without releasing (its connection
  // goes down with the front end): the lease can only expire.
  {
    auto holder = net::TcpChannel::Connect("127.0.0.1", port, &error);
    ASSERT_NE(holder, nullptr) << error;
    net::RemoteCacheClient dead_writer(*holder);
    SessionId tid = dead_writer.GenID();
    ASSERT_NE(tid, 0u);
    ASSERT_EQ(dead_writer.QaReg(tid, "K"), QuarantineResult::kGranted);
  }
  ASSERT_EQ(server.LeaseCount(), 1u);

  tcp->Stop();
  tcp.reset();  // the server endpoint is gone

  {
    auto conn = down_system.Connect();
    Stopwatch watch(SteadyClock::Instance());
    casql::WriteOutcome out = conn->Write(spec);
    EXPECT_FALSE(out.committed);
    EXPECT_EQ(out.transport_restarts, 5);
    // Fail fast: connect-refused plus capped backoff, nowhere near a
    // human-visible hang.
    EXPECT_LT(watch.ElapsedNanos(), 2 * kNanosPerSec);
    // The RDBMS never committed around the missing quarantine.
    auto txn = db.Begin();
    EXPECT_EQ(*sql::AsInt((*txn->SelectByPk("T", {V(1)}))[1]), 0);
    txn->Rollback();
    // Reads degrade to pass-through while the server is gone.
    auto read = conn->Read("K", compute);
    EXPECT_TRUE(read.computed);
    ASSERT_TRUE(read.value);
    EXPECT_EQ(*read.value, "0");
  }

  // Restart on the same port (SO_REUSEADDR), same server state — the
  // stranded Q lease is still there and must expire, not block forever.
  net::TcpServer::Config rcfg = tcfg;
  rcfg.port = port;
  tcp = std::make_unique<net::TcpServer>(server, rcfg);
  ASSERT_TRUE(tcp->Start(&error)) << error;

  {
    auto conn = system.Connect();
    casql::WriteOutcome out = conn->Write(spec);
    EXPECT_TRUE(out.committed);
    auto read = conn->Read("K", compute);
    ASSERT_TRUE(read.value);
    EXPECT_EQ(*read.value, "1");  // zero stale reads after recovery
  }
  EXPECT_GE(channel.reconnects(), 1u);
  EXPECT_GT(channel.transport_errors(), 0u);
  // The dead writer's lease can only leave by expiring; the sweep (what
  // iqcached's reaper thread runs) collects it without any request traffic.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  server.SweepExpired();
  EXPECT_EQ(server.LeaseCount(), 0u);
  auto item = server.store().Get("K");
  EXPECT_TRUE(!item.has_value() || item->value != "0");
  tcp->Stop();
}

TEST_F(ShardedStackTest, BgWorkloadOnTwoShardsHasZeroUnpredictableReads) {
  sql::Database db;
  bg::CreateBgTables(db);
  bg::GraphConfig graph{40, 4, 1, 1};
  bg::LoadGraph(db, graph);
  bg::ActionPools pools;
  pools.SeedFromGraph(graph);
  CasqlSystem system(db, *router_, Config(Technique::kRefresh));

  bg::WorkloadConfig wl;
  wl.mix = bg::HighWriteMix();
  wl.threads = 4;
  wl.duration = 150 * kNanosPerMilli;
  wl.seed = 3;
  auto result = bg::RunWorkload(system, pools, graph, wl);
  EXPECT_GT(result.actions, 20u);
  EXPECT_GT(result.validation.reads_checked, 0u);
  EXPECT_EQ(result.validation.unpredictable, 0u)
      << result.validation.StalePercent() << "% stale across the tier";
  // Every lease drained on both children, and both shards saw real work.
  EXPECT_EQ(local_child_.LeaseCount(), 0u);
  EXPECT_EQ(tcp_child_.LeaseCount(), 0u);
  IQServerStats aggregated = router_->Stats();
  IQServerStats local = local_child_.Stats();
  IQServerStats tcp = tcp_child_.Stats();
  EXPECT_GT(local.commits, 0u);
  EXPECT_GT(tcp.commits, 0u);
  // The aggregate (TCP child parsed from wire stats) matches the direct sum.
  EXPECT_EQ(aggregated.commits, local.commits + tcp.commits);
  EXPECT_EQ(aggregated.q_ref_granted, local.q_ref_granted + tcp.q_ref_granted);
}

}  // namespace
}  // namespace iq
