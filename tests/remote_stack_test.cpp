// The full CASQL stack over the wire: the casql session layer and the BG
// benchmark drive a RemoteBackend that reaches the IQ-Server only through
// the memcached/IQ text protocol (serialize -> parse -> dispatch ->
// serialize -> parse per operation) - the paper's actual deployment shape.
#include <gtest/gtest.h>

#include "bg/workload.h"
#include "casql/casql.h"
#include "casql/query_cache.h"
#include "net/remote_backend.h"

namespace iq {
namespace {

using casql::CasqlConfig;
using casql::CasqlSystem;
using casql::Consistency;
using casql::Technique;
using sql::SchemaBuilder;
using sql::Transaction;
using sql::TxnResult;
using sql::V;

class RemoteStackTest : public ::testing::Test {
 protected:
  RemoteStackTest() : channel_(server_), backend_(channel_) {}

  CasqlConfig Config(Technique t) {
    CasqlConfig cfg;
    cfg.technique = t;
    cfg.consistency = Consistency::kIQ;
    cfg.client.backoff_base = 20 * kNanosPerMicro;
    cfg.client.backoff_cap = kNanosPerMilli;
    return cfg;
  }

  IQServer server_;
  net::LoopbackChannel channel_;
  net::RemoteBackend backend_;
};

TEST_F(RemoteStackTest, ReadThroughSessionOverTheWire) {
  sql::Database db;
  db.CreateTable(SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
  {
    auto txn = db.Begin();
    txn->Insert("T", {V(1), V(7)});
    txn->Commit();
  }
  CasqlSystem system(db, backend_, Config(Technique::kRefresh));
  auto conn = system.Connect();
  auto compute = [](Transaction& txn) -> std::optional<std::string> {
    auto row = txn.SelectByPk("T", {V(1)});
    if (!row) return std::nullopt;
    return std::to_string(*sql::AsInt((*row)[1]));
  };
  auto miss = conn->Read("K", compute);
  EXPECT_TRUE(miss.computed);
  EXPECT_EQ(miss.value, "7");
  auto hit = conn->Read("K", compute);
  EXPECT_TRUE(hit.hit);
  // The value really lives in the remote server's store.
  EXPECT_EQ(server_.store().Get("K")->value, "7");
  EXPECT_GT(channel_.requests(), 2u);  // every op crossed the wire
}

TEST_F(RemoteStackTest, WriteSessionsWorkForEveryTechnique) {
  for (Technique t : {Technique::kInvalidate, Technique::kRefresh,
                      Technique::kIncremental}) {
    sql::Database db;
    db.CreateTable(
        SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
    {
      auto txn = db.Begin();
      txn->Insert("T", {V(1), V(0)});
      txn->Commit();
    }
    server_.store().Flush();
    CasqlSystem system(db, backend_, Config(t));
    auto conn = system.Connect();
    auto compute = [](Transaction& txn) -> std::optional<std::string> {
      auto row = txn.SelectByPk("T", {V(1)});
      if (!row) return std::nullopt;
      return std::to_string(*sql::AsInt((*row)[1]));
    };
    conn->Read("K", compute);
    casql::WriteSpec spec;
    spec.body = [](Transaction& txn) {
      return txn.UpdateByPk("T", {V(1)}, [](sql::Row& row) {
               row[1] = V(*sql::AsInt(row[1]) + 1);
             }) == TxnResult::kOk;
    };
    casql::KeyUpdate u;
    u.key = "K";
    u.refresh = [](const std::optional<std::string>& old)
        -> std::optional<std::string> {
      if (!old) return std::nullopt;
      return std::to_string(std::stoll(*old) + 1);
    };
    u.delta = DeltaOp{DeltaOp::Kind::kIncr, {}, 1};
    spec.updates.push_back(std::move(u));
    EXPECT_TRUE(conn->Write(spec).committed) << casql::ToString(t);
    auto read = conn->Read("K", compute);
    ASSERT_TRUE(read.value) << casql::ToString(t);
    EXPECT_EQ(*read.value, "1") << casql::ToString(t);
  }
}

TEST_F(RemoteStackTest, QueryCacheRunsOverTheWire) {
  sql::Database db;
  db.CreateTable(SchemaBuilder("Users")
                     .AddInt("id")
                     .AddInt("score")
                     .PrimaryKey({"id"})
                     .Build());
  {
    auto txn = db.Begin();
    txn->Insert("Users", {V(1), V(10)});
    txn->Commit();
  }
  casql::QueryCache cache(db, backend_);
  auto r1 = cache.Select("SELECT score FROM Users WHERE id = ?", {V(1)});
  EXPECT_EQ(r1.rows[0][0], V(10));
  auto r2 = cache.Select("SELECT score FROM Users WHERE id = ?", {V(1)});
  EXPECT_EQ(r2.rows[0][0], V(10));
  EXPECT_EQ(cache.GetStats().result_hits, 1u);
  ASSERT_TRUE(cache.Write({"Users"}, [](Transaction& txn) {
    return sql::Query(txn, "UPDATE Users SET score = 99 WHERE id = 1").ok();
  }));
  auto r3 = cache.Select("SELECT score FROM Users WHERE id = ?", {V(1)});
  EXPECT_EQ(r3.rows[0][0], V(99));
}

TEST_F(RemoteStackTest, BgWorkloadOverTheWireHasZeroUnpredictableReads) {
  sql::Database db;
  bg::CreateBgTables(db);
  bg::GraphConfig graph{40, 4, 1, 1};
  bg::LoadGraph(db, graph);
  bg::ActionPools pools;
  pools.SeedFromGraph(graph);
  CasqlSystem system(db, backend_, Config(Technique::kRefresh));

  bg::WorkloadConfig wl;
  wl.mix = bg::HighWriteMix();
  wl.threads = 4;
  wl.duration = 150 * kNanosPerMilli;
  wl.seed = 3;
  auto result = bg::RunWorkload(system, pools, graph, wl);
  EXPECT_GT(result.actions, 50u);
  EXPECT_GT(result.validation.reads_checked, 0u);
  EXPECT_EQ(result.validation.unpredictable, 0u)
      << result.validation.StalePercent() << "% stale over the wire";
  EXPECT_GT(channel_.requests(), result.actions);  // wire traffic happened
}

}  // namespace
}  // namespace iq
