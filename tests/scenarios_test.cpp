// The paper's race-condition figures, reproduced deterministically. Each
// figure's interleaving is executed twice: the vulnerable arrangement must
// diverge (stale data), and the IQ arrangement must converge.
#include <gtest/gtest.h>

#include "sim/scenarios.h"
#include "sim/step_scheduler.h"

#include <thread>

namespace iq::sim {
namespace {

// ---- the scheduler itself -------------------------------------------------

TEST(StepScheduler, RunsStepsInPrescribedOrder) {
  StepScheduler sched({"a", "b", "c"});
  std::string trace;
  std::thread t1([&] {
    sched.Step("b", [&] { trace += 'b'; });
  });
  std::thread t2([&] {
    sched.Step("a", [&] { trace += 'a'; });
    sched.Step("c", [&] { trace += 'c'; });
  });
  t1.join();
  t2.join();
  EXPECT_EQ(trace, "abc");
  EXPECT_FALSE(sched.aborted());
}

TEST(StepScheduler, TimesOutOnMissingStep) {
  StepScheduler sched({"never", "late"}, /*timeout=*/20 * kNanosPerMilli);
  EXPECT_FALSE(sched.Step("late"));
  EXPECT_TRUE(sched.aborted());
}

TEST(StepScheduler, AbortUnblocksWaiters) {
  StepScheduler sched({"x", "y"}, kNanosPerSec);
  std::thread waiter([&] { EXPECT_FALSE(sched.Step("y")); });
  sched.Abort();
  waiter.join();
}

TEST(StepScheduler, StepAfterAbortFails) {
  StepScheduler sched({"a"});
  sched.Abort();
  EXPECT_FALSE(sched.Step("a"));
}

// ---- figure reproductions ----------------------------------------------------

struct FigureCase {
  const char* name;
  ScenarioResult (*run)(bool use_iq);
};

class FigureTest : public ::testing::TestWithParam<FigureCase> {};

TEST_P(FigureTest, VulnerableClientProducesStaleData) {
  ScenarioResult r = GetParam().run(/*use_iq=*/false);
  ASSERT_TRUE(r.schedule_ok) << "interleaving did not execute fully";
  EXPECT_FALSE(r.Consistent())
      << "expected divergence: rdbms=" << r.rdbms_value
      << " kvs=" << r.kvs_value;
}

TEST_P(FigureTest, IQFrameworkConverges) {
  ScenarioResult r = GetParam().run(/*use_iq=*/true);
  ASSERT_TRUE(r.schedule_ok) << "interleaving did not execute fully";
  EXPECT_TRUE(r.Consistent()) << "rdbms=" << r.rdbms_value
                              << " kvs=" << r.kvs_value;
}

INSTANTIATE_TEST_SUITE_P(
    PaperFigures, FigureTest,
    ::testing::Values(FigureCase{"Figure2_CasWriteWrite", RunFigure2},
                      FigureCase{"Figure3_SnapshotInvalidate", RunFigure3},
                      FigureCase{"Figure6_DirtyReadOnAbort", RunFigure6},
                      FigureCase{"Figure7_SnapshotDelta", RunFigure7},
                      FigureCase{"Figure8_DoubleAppend", RunFigure8}),
    [](const ::testing::TestParamInfo<FigureCase>& info) {
      return info.param.name;
    });

// ---- figure-specific value assertions -----------------------------------------

TEST(Figure2, ReproducesPaperNumbers) {
  // Initial 100; S1 adds 50, S2 multiplies by 10 with the paper's
  // interleaving: RDBMS (100+50)*10 = 1500, KVS 100*10+50 = 1050.
  ScenarioResult r = RunFigure2(false);
  ASSERT_TRUE(r.schedule_ok);
  EXPECT_EQ(r.rdbms_value, "1500");
  EXPECT_EQ(r.kvs_value, "1050");
}

TEST(Figure2, IQSerializesToRdbmsOrder) {
  ScenarioResult r = RunFigure2(true);
  ASSERT_TRUE(r.schedule_ok);
  EXPECT_EQ(r.rdbms_value, "1500");
  EXPECT_EQ(r.kvs_value, "1500");
}

TEST(Figure3, StaleValueIsThePreUpdateValue) {
  ScenarioResult r = RunFigure3(false);
  ASSERT_TRUE(r.schedule_ok);
  EXPECT_EQ(r.rdbms_value, "new");
  EXPECT_EQ(r.kvs_value, "old");
  EXPECT_TRUE(r.kvs_resident);  // the stale value persists in the cache
}

TEST(Figure6, DirtyValueVisibleWithoutIQ) {
  ScenarioResult r = RunFigure6(false);
  ASSERT_TRUE(r.schedule_ok);
  EXPECT_EQ(r.rdbms_value, "100");  // the transaction aborted
  EXPECT_EQ(r.kvs_value, "150");    // but the KVS kept the dirty write
}

TEST(Figure7, WriterAppendLostWithoutIQ) {
  ScenarioResult r = RunFigure7(false);
  ASSERT_TRUE(r.schedule_ok);
  EXPECT_EQ(r.rdbms_value, "AB");
  EXPECT_EQ(r.kvs_value, "A");  // S1's append vanished
}

TEST(Figure8, AppendAppliedTwiceWithoutIQ) {
  ScenarioResult r = RunFigure8(false);
  ASSERT_TRUE(r.schedule_ok);
  EXPECT_EQ(r.rdbms_value, "AB");
  EXPECT_EQ(r.kvs_value, "ABB");  // duplicated suffix
}

// The races and their fixes are deterministic: repeat to prove it.
TEST(Determinism, FiguresReproduceEveryTime) {
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(RunFigure3(false).Consistent());
    EXPECT_TRUE(RunFigure3(true).Consistent());
  }
}

}  // namespace
}  // namespace iq::sim
