// ShardedBackend: consistent-hash routing, lazy per-shard session minting,
// and the fan-out session lifecycle (commit/abort/reject-release) across
// in-process children.
#include "core/sharded_backend.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/iq_server.h"

namespace iq {
namespace {

/// A key whose ring position lands on `shard` (probe a numbered sequence;
/// with >=64 vnodes per shard every shard owns plenty of keyspace).
std::string KeyOnShard(const ShardedBackend& router, std::size_t shard,
                       const std::string& prefix = "k") {
  for (int i = 0; i < 10000; ++i) {
    std::string key = prefix + std::to_string(i);
    if (router.ShardFor(key) == shard) return key;
  }
  ADD_FAILURE() << "no key found for shard " << shard;
  return {};
}

class ShardedBackendTest : public ::testing::Test {
 protected:
  ShardedBackendTest()
      : router_({{"cache-a", &child0_, 1, [this] { return child0_.Stats(); }},
                 {"cache-b", &child1_, 1, [this] { return child1_.Stats(); }}},
                ShardedBackend::Config{}) {}

  IQServer child0_;
  IQServer child1_;
  ShardedBackend router_;
};

TEST(ShardedRing, RoutingIsDeterministicAcrossInstances) {
  IQServer a, b;
  std::vector<ShardedBackend::Shard> shards = {{"s0", &a, 1, nullptr},
                                               {"s1", &b, 1, nullptr}};
  ShardedBackend r1(shards);
  ShardedBackend r2(shards);  // a second router, as each client thread builds
  for (int i = 0; i < 500; ++i) {
    std::string key = "key" + std::to_string(i);
    EXPECT_EQ(r1.ShardFor(key), r2.ShardFor(key)) << key;
  }
}

TEST(ShardedRing, EveryShardOwnsKeyspace) {
  IQServer a, b, c, d;
  ShardedBackend router({{"s0", &a, 1, nullptr},
                         {"s1", &b, 1, nullptr},
                         {"s2", &c, 1, nullptr},
                         {"s3", &d, 1, nullptr}});
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 2000; ++i) {
    ++hits[router.ShardFor("key" + std::to_string(i))];
  }
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(ShardedRing, WeightSkewsDistribution) {
  IQServer a, b;
  ShardedBackend router({{"small", &a, 1, nullptr}, {"big", &b, 4, nullptr}});
  int small = 0, big = 0;
  for (int i = 0; i < 4000; ++i) {
    (router.ShardFor("key" + std::to_string(i)) == 0 ? small : big)++;
  }
  EXPECT_GT(big, small);  // weight 4 owns ~4x the ring
}

TEST(ShardedRing, EmptyShardListThrows) {
  EXPECT_THROW(ShardedBackend({}), std::invalid_argument);
}

TEST_F(ShardedBackendTest, PlainOpsRouteByKey) {
  std::string k0 = KeyOnShard(router_, 0);
  std::string k1 = KeyOnShard(router_, 1);
  EXPECT_EQ(router_.Set(k0, "v0"), StoreResult::kStored);
  EXPECT_EQ(router_.Set(k1, "v1"), StoreResult::kStored);
  // The value lives only in the owning child.
  EXPECT_TRUE(child0_.Get(k0));
  EXPECT_FALSE(child1_.Get(k0));
  EXPECT_TRUE(child1_.Get(k1));
  EXPECT_FALSE(child0_.Get(k1));
  EXPECT_EQ(router_.Get(k0)->value, "v0");
  EXPECT_EQ(router_.Get(k1)->value, "v1");
}

TEST_F(ShardedBackendTest, SessionsAreMintedLazilyPerShard) {
  std::string k0 = KeyOnShard(router_, 0);
  SessionId tid = router_.GenID();
  router_.Set(k0, "v");
  ASSERT_EQ(router_.QaReg(tid, k0), QuarantineResult::kGranted);
  router_.Commit(tid);
  // Only shard 0 was touched: its child saw the commit, the other child saw
  // no session traffic at all.
  EXPECT_EQ(child0_.Stats().commits, 1u);
  EXPECT_EQ(child1_.Stats().commits, 0u);
  ShardedBackendStats rs = router_.router_stats();
  EXPECT_EQ(rs.sessions, 1u);
  EXPECT_EQ(rs.shard_sessions, 1u);
  EXPECT_EQ(rs.fanout_commits, 1u);
  EXPECT_EQ(rs.cross_shard_sessions, 0u);
}

TEST_F(ShardedBackendTest, CommitFansOutToAllTouchedShards) {
  std::string k0 = KeyOnShard(router_, 0);
  std::string k1 = KeyOnShard(router_, 1);
  router_.Set(k0, "10");
  router_.Set(k1, "x");
  SessionId tid = router_.GenID();
  EXPECT_EQ(router_.IQDelta(tid, k0, {DeltaOp::Kind::kIncr, {}, 5}),
            QuarantineResult::kGranted);
  EXPECT_EQ(router_.IQDelta(tid, k1, {DeltaOp::Kind::kAppend, "y", 0}),
            QuarantineResult::kGranted);
  router_.Commit(tid);
  EXPECT_EQ(router_.Get(k0)->value, "15");
  EXPECT_EQ(router_.Get(k1)->value, "xy");
  EXPECT_EQ(child0_.Stats().commits, 1u);
  EXPECT_EQ(child1_.Stats().commits, 1u);
  EXPECT_EQ(router_.router_stats().cross_shard_sessions, 1u);
  EXPECT_EQ(router_.router_stats().fanout_commits, 1u);
}

TEST_F(ShardedBackendTest, AbortReleasesLeasesOnEveryTouchedShard) {
  std::string k0 = KeyOnShard(router_, 0);
  std::string k1 = KeyOnShard(router_, 1);
  router_.Set(k0, "a");
  router_.Set(k1, "b");
  SessionId tid = router_.GenID();
  EXPECT_EQ(router_.QaRead(k0, tid).status, QaReadReply::Status::kGranted);
  EXPECT_EQ(router_.QaRead(k1, tid).status, QaReadReply::Status::kGranted);
  EXPECT_EQ(child0_.LeaseCount(), 1u);
  EXPECT_EQ(child1_.LeaseCount(), 1u);
  router_.Abort(tid);
  EXPECT_EQ(child0_.LeaseCount(), 0u);
  EXPECT_EQ(child1_.LeaseCount(), 0u);
  // Values survive the abort.
  EXPECT_EQ(router_.Get(k0)->value, "a");
  EXPECT_EQ(router_.Get(k1)->value, "b");
  EXPECT_EQ(router_.router_stats().fanout_aborts, 1u);
}

TEST_F(ShardedBackendTest, QaReadRejectReleasesEveryTouchedShard) {
  std::string k0 = KeyOnShard(router_, 0);
  std::string k1 = KeyOnShard(router_, 1);
  router_.Set(k0, "a");
  router_.Set(k1, "b");
  // Session 2 holds the Q lease on k1 (shard 1).
  SessionId holder = router_.GenID();
  ASSERT_EQ(router_.QaRead(k1, holder).status, QaReadReply::Status::kGranted);
  // Session 1 acquires k0 (shard 0) and is then rejected on k1. Without the
  // fan-out release its Q lease on shard 0 would outlive the reject and
  // deadlock every retry that touches k0.
  SessionId tid = router_.GenID();
  ASSERT_EQ(router_.QaRead(k0, tid).status, QaReadReply::Status::kGranted);
  ASSERT_EQ(router_.QaRead(k1, tid).status, QaReadReply::Status::kReject);
  EXPECT_EQ(child0_.LeaseCount(), 0u);  // k0 released by the router
  // A fresh session can acquire k0 immediately (no stranded lease).
  SessionId retry = router_.GenID();
  EXPECT_EQ(router_.QaRead(k0, retry).status, QaReadReply::Status::kGranted);
  EXPECT_EQ(router_.router_stats().reject_releases, 1u);
  router_.Abort(retry);
  router_.Abort(holder);
}

TEST_F(ShardedBackendTest, IQDeltaRejectReleasesEveryTouchedShard) {
  std::string k0 = KeyOnShard(router_, 0);
  std::string k1 = KeyOnShard(router_, 1);
  router_.Set(k0, "a");
  router_.Set(k1, "5");
  SessionId holder = router_.GenID();
  ASSERT_EQ(router_.QaRead(k1, holder).status, QaReadReply::Status::kGranted);
  SessionId tid = router_.GenID();
  ASSERT_EQ(router_.QaRead(k0, tid).status, QaReadReply::Status::kGranted);
  ASSERT_EQ(router_.IQDelta(tid, k1, {DeltaOp::Kind::kIncr, {}, 1}),
            QuarantineResult::kReject);
  EXPECT_EQ(child0_.LeaseCount(), 0u);
  EXPECT_EQ(router_.router_stats().reject_releases, 1u);
  router_.Abort(holder);
}

TEST_F(ShardedBackendTest, OwnQuarantinedKeyReadsAsMissNoLease) {
  std::string k0 = KeyOnShard(router_, 0);
  router_.Set(k0, "v");
  SessionId tid = router_.GenID();
  ASSERT_EQ(router_.QaReg(tid, k0), QuarantineResult::kGranted);
  // The session's own quarantine must be recognized through the router's
  // id translation: same virtual id => same child id on that shard.
  EXPECT_EQ(router_.IQget(k0, tid).status, GetReply::Status::kMissNoLease);
  router_.DaR(tid);
  EXPECT_FALSE(router_.Get(k0));
}

TEST_F(ShardedBackendTest, ReleaseKeyDropsOneLeaseAndKeepsTheRest) {
  std::string k0 = KeyOnShard(router_, 0);
  std::string k1 = KeyOnShard(router_, 1);
  router_.Set(k0, "10");
  SessionId tid = router_.GenID();
  ASSERT_EQ(router_.QaRead(k1, tid).status, QaReadReply::Status::kGranted);
  ASSERT_EQ(router_.IQDelta(tid, k0, {DeltaOp::Kind::kIncr, {}, 7}),
            QuarantineResult::kGranted);
  router_.ReleaseKey(tid, k1);
  EXPECT_EQ(child1_.LeaseCount(), 0u);
  // The shard-0 delta survives the release of the shard-1 lease.
  router_.Commit(tid);
  EXPECT_EQ(router_.Get(k0)->value, "17");
}

TEST_F(ShardedBackendTest, ReleaseKeyOnUntouchedShardIsANoOp) {
  SessionId tid = router_.GenID();
  router_.ReleaseKey(tid, KeyOnShard(router_, 1));  // never minted there
  EXPECT_EQ(router_.router_stats().shard_sessions, 0u);
}

TEST_F(ShardedBackendTest, AnonymousReadsDoNotMintSessions) {
  std::string k0 = KeyOnShard(router_, 0);
  router_.Set(k0, "v");
  EXPECT_EQ(router_.IQget(k0).status, GetReply::Status::kHit);
  EXPECT_EQ(router_.router_stats().shard_sessions, 0u);
}

TEST_F(ShardedBackendTest, StatsAggregateAcrossShardsWithBreakdown) {
  std::string k0 = KeyOnShard(router_, 0);
  std::string k1 = KeyOnShard(router_, 1);
  SessionId t0 = router_.GenID();
  ASSERT_EQ(router_.IQget(k0, t0).status, GetReply::Status::kMissGrantedI);
  router_.Commit(t0);
  SessionId t1 = router_.GenID();
  router_.Set(k1, "v");
  ASSERT_EQ(router_.QaRead(k1, t1).status, QaReadReply::Status::kGranted);
  router_.Abort(t1);
  IQServerStats total = router_.Stats();
  EXPECT_EQ(total.i_granted, 1u);      // from shard 0
  EXPECT_EQ(total.q_ref_granted, 1u);  // from shard 1
  std::string stats = router_.FormatStats();
  EXPECT_NE(stats.find("STAT shard_count 2"), std::string::npos);
  EXPECT_NE(stats.find("STAT shard0_endpoint cache-a"), std::string::npos);
  EXPECT_NE(stats.find("STAT shard1_endpoint cache-b"), std::string::npos);
  EXPECT_NE(stats.find("STAT i_leases_granted 1"), std::string::npos);
  EXPECT_NE(stats.find("STAT shard0_i_leases_granted 1"), std::string::npos);
  EXPECT_NE(stats.find("STAT shard1_q_ref_granted 1"), std::string::npos);
  EXPECT_NE(stats.find("STAT router_sessions 2"), std::string::npos);
}

TEST_F(ShardedBackendTest, SessionIdReuseAfterCommitMintsFreshChildIds) {
  // The upper stack reuses one SessionId across transactions (IQSession
  // keeps its id); after a fan-out Commit the router must start a clean
  // per-shard slate for the same virtual id.
  std::string k0 = KeyOnShard(router_, 0);
  router_.Set(k0, "1");
  SessionId tid = router_.GenID();
  ASSERT_EQ(router_.IQDelta(tid, k0, {DeltaOp::Kind::kIncr, {}, 1}),
            QuarantineResult::kGranted);
  router_.Commit(tid);
  ASSERT_EQ(router_.IQDelta(tid, k0, {DeltaOp::Kind::kIncr, {}, 1}),
            QuarantineResult::kGranted);
  router_.Commit(tid);
  EXPECT_EQ(router_.Get(k0)->value, "3");
  EXPECT_EQ(router_.router_stats().shard_sessions, 2u);  // minted twice
  EXPECT_EQ(child0_.Stats().commits, 2u);
}

}  // namespace
}  // namespace iq
