#include <gtest/gtest.h>

#include "rdbms/sql.h"

namespace iq::sql {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable(SchemaBuilder("Users")
                        .AddInt("id")
                        .AddText("name")
                        .AddInt("score")
                        .PrimaryKey({"id"})
                        .Index("score")
                        .Build());
    auto txn = db_.Begin();
    for (int i = 0; i < 10; ++i) {
      txn->Insert("Users", {V(i), V("user" + std::to_string(i)), V(i * 10)});
    }
    ASSERT_EQ(txn->Commit(), TxnResult::kOk);
  }

  QueryResult Run(const std::string& sql, std::vector<Value> params = {}) {
    auto txn = db_.Begin();
    auto r = Query(*txn, sql, params);
    txn->Commit();
    return r;
  }

  Database db_;
};

// ---- parser ------------------------------------------------------------------

TEST(SqlParser, ParsesSelectStar) {
  auto stmt = Prepare("SELECT * FROM t");
  EXPECT_EQ(stmt.kind, StatementKind::kSelect);
  EXPECT_EQ(stmt.table, "t");
  EXPECT_TRUE(stmt.select_columns.empty());
  EXPECT_TRUE(stmt.where.empty());
}

TEST(SqlParser, ParsesProjection) {
  auto stmt = Prepare("SELECT a, b, c FROM t");
  EXPECT_EQ(stmt.select_columns, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SqlParser, ParsesWhereConjunction) {
  auto stmt = Prepare("SELECT * FROM t WHERE a = 1 AND b <> 'x' AND c >= ?");
  ASSERT_EQ(stmt.where.size(), 3u);
  EXPECT_EQ(stmt.where[0].op, CompareOp::kEq);
  EXPECT_EQ(stmt.where[1].op, CompareOp::kNe);
  EXPECT_EQ(stmt.where[2].op, CompareOp::kGe);
  EXPECT_EQ(stmt.param_count, 1);
}

TEST(SqlParser, ParsesAllComparisonOps) {
  auto stmt = Prepare(
      "SELECT * FROM t WHERE a = 1 AND b <> 2 AND c < 3 AND d <= 4 AND e > 5 "
      "AND f >= 6");
  ASSERT_EQ(stmt.where.size(), 6u);
}

TEST(SqlParser, ParsesInsertWithColumnList) {
  auto stmt = Prepare("INSERT INTO t (a, b) VALUES (?, 'x')");
  EXPECT_EQ(stmt.kind, StatementKind::kInsert);
  EXPECT_EQ(stmt.insert_columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(stmt.insert_values.size(), 2u);
  EXPECT_EQ(stmt.param_count, 1);
}

TEST(SqlParser, ParsesInsertWithoutColumnList) {
  auto stmt = Prepare("INSERT INTO t VALUES (1, 2, 3)");
  EXPECT_TRUE(stmt.insert_columns.empty());
  EXPECT_EQ(stmt.insert_values.size(), 3u);
}

TEST(SqlParser, ParsesUpdateWithArithmeticSet) {
  auto stmt = Prepare("UPDATE t SET n = n + 1, v = ? WHERE id = ?");
  EXPECT_EQ(stmt.kind, StatementKind::kUpdate);
  ASSERT_EQ(stmt.set_exprs.size(), 2u);
  EXPECT_EQ(stmt.set_exprs[0].second.kind, Expr::Kind::kAdd);
  EXPECT_EQ(stmt.param_count, 2);
}

TEST(SqlParser, ParsesDelete) {
  auto stmt = Prepare("DELETE FROM t WHERE a = ? AND b = ?");
  EXPECT_EQ(stmt.kind, StatementKind::kDelete);
  EXPECT_EQ(stmt.where.size(), 2u);
}

TEST(SqlParser, ParsesNullLiteral) {
  auto stmt = Prepare("INSERT INTO t VALUES (NULL, 1)");
  EXPECT_TRUE(IsNull(stmt.insert_values[0].literal));
}

TEST(SqlParser, ParsesEscapedQuotes) {
  auto stmt = Prepare("INSERT INTO t VALUES ('it''s')");
  EXPECT_EQ(std::get<std::string>(stmt.insert_values[0].literal), "it's");
}

TEST(SqlParser, KeywordsAreCaseInsensitive) {
  auto stmt = Prepare("select * from t where a = 1");
  EXPECT_EQ(stmt.kind, StatementKind::kSelect);
}

TEST(SqlParser, RejectsGarbage) {
  EXPECT_THROW(Prepare("FROBNICATE t"), std::invalid_argument);
  EXPECT_THROW(Prepare("SELECT FROM"), std::invalid_argument);
  EXPECT_THROW(Prepare("SELECT * FROM t WHERE"), std::invalid_argument);
  EXPECT_THROW(Prepare("INSERT INTO t VALUES (1"), std::invalid_argument);
  EXPECT_THROW(Prepare("SELECT * FROM t extra"), std::invalid_argument);
  EXPECT_THROW(Prepare("SELECT * FROM t WHERE a = 'unterminated"),
               std::invalid_argument);
}

// ---- executor ----------------------------------------------------------------

TEST_F(SqlTest, SelectStarReturnsAllColumns) {
  auto r = Run("SELECT * FROM Users WHERE id = 3");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.columns, (std::vector<std::string>{"id", "name", "score"}));
  EXPECT_EQ(r.rows[0], (Row{V(3), V("user3"), V(30)}));
}

TEST_F(SqlTest, SelectProjectionReordersColumns) {
  auto r = Run("SELECT score, id FROM Users WHERE id = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0], (Row{V(20), V(2)}));
}

TEST_F(SqlTest, SelectWithParams) {
  auto r = Run("SELECT name FROM Users WHERE id = ?", {V(7)});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], V("user7"));
}

TEST_F(SqlTest, SelectRangePredicateScans) {
  auto r = Run("SELECT id FROM Users WHERE score >= 50 AND score < 80");
  EXPECT_EQ(r.rows.size(), 3u);  // scores 50, 60, 70
}

TEST_F(SqlTest, SelectViaSecondaryIndex) {
  auto r = Run("SELECT id FROM Users WHERE score = 40");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], V(4));
}

TEST_F(SqlTest, SelectEmptyResult) {
  auto r = Run("SELECT * FROM Users WHERE id = 999");
  EXPECT_TRUE(r.rows.empty());
  EXPECT_TRUE(r.ok());
}

TEST_F(SqlTest, SelectUnknownTableIsNotFound) {
  auto r = Run("SELECT * FROM Nope");
  EXPECT_EQ(r.status, TxnResult::kNotFound);
}

TEST_F(SqlTest, SelectUnknownColumnThrows) {
  auto txn = db_.Begin();
  EXPECT_THROW(Query(*txn, "SELECT nope FROM Users"), std::invalid_argument);
}

TEST_F(SqlTest, InsertWithColumnList) {
  auto r = Run("INSERT INTO Users (id, name, score) VALUES (?, ?, ?)",
               {V(100), V("new"), V(5)});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.affected, 1u);
  auto check = Run("SELECT name FROM Users WHERE id = 100");
  EXPECT_EQ(check.rows[0][0], V("new"));
}

TEST_F(SqlTest, InsertPartialColumnsLeavesNull) {
  Run("INSERT INTO Users (id, name) VALUES (101, 'partial')");
  auto check = Run("SELECT score FROM Users WHERE id = 101");
  EXPECT_TRUE(IsNull(check.rows[0][0]));
}

TEST_F(SqlTest, InsertDuplicateKeyFails) {
  auto r = Run("INSERT INTO Users VALUES (1, 'dup', 0)");
  EXPECT_EQ(r.status, TxnResult::kDuplicateKey);
}

TEST_F(SqlTest, InsertArityMismatchThrows) {
  auto txn = db_.Begin();
  EXPECT_THROW(Query(*txn, "INSERT INTO Users VALUES (1, 'x')"),
               std::invalid_argument);
}

TEST_F(SqlTest, UpdateSetsLiteralValues) {
  auto r = Run("UPDATE Users SET name = 'renamed' WHERE id = 5");
  EXPECT_EQ(r.affected, 1u);
  EXPECT_EQ(Run("SELECT name FROM Users WHERE id = 5").rows[0][0], V("renamed"));
}

TEST_F(SqlTest, UpdateArithmeticOnOldValue) {
  Run("UPDATE Users SET score = score + 5 WHERE id = 3");
  EXPECT_EQ(Run("SELECT score FROM Users WHERE id = 3").rows[0][0], V(35));
  Run("UPDATE Users SET score = score - 10 WHERE id = 3");
  EXPECT_EQ(Run("SELECT score FROM Users WHERE id = 3").rows[0][0], V(25));
}

TEST_F(SqlTest, UpdateWithParamsInSetAndWhere) {
  auto r = Run("UPDATE Users SET score = score + ? WHERE id = ?",
               {V(100), V(2)});
  EXPECT_EQ(r.affected, 1u);
  EXPECT_EQ(Run("SELECT score FROM Users WHERE id = 2").rows[0][0], V(120));
}

TEST_F(SqlTest, UpdateMultipleRows) {
  auto r = Run("UPDATE Users SET score = 0 WHERE score > 50");
  EXPECT_EQ(r.affected, 4u);  // 60, 70, 80, 90
}

TEST_F(SqlTest, UpdateZeroRowsIsOk) {
  auto r = Run("UPDATE Users SET score = 1 WHERE id = 12345");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.affected, 0u);
}

TEST_F(SqlTest, SwapSemanticsUsePreUpdateRow) {
  // "SET a = b, b = a" must read both from the pre-update row.
  db_.CreateTable(SchemaBuilder("P")
                      .AddInt("id")
                      .AddInt("a")
                      .AddInt("b")
                      .PrimaryKey({"id"})
                      .Build());
  Run("INSERT INTO P VALUES (1, 10, 20)");
  Run("UPDATE P SET a = b, b = a WHERE id = 1");
  auto r = Run("SELECT a, b FROM P WHERE id = 1");
  EXPECT_EQ(r.rows[0], (Row{V(20), V(10)}));
}

TEST_F(SqlTest, DeleteRemovesMatchingRows) {
  auto r = Run("DELETE FROM Users WHERE score < 30");
  EXPECT_EQ(r.affected, 3u);  // 0, 10, 20
  EXPECT_EQ(Run("SELECT * FROM Users").rows.size(), 7u);
}

TEST_F(SqlTest, DeleteByCompositePredicate) {
  auto r = Run("DELETE FROM Users WHERE id = ? AND score = ?", {V(4), V(40)});
  EXPECT_EQ(r.affected, 1u);
}

TEST_F(SqlTest, MissingParameterThrows) {
  auto txn = db_.Begin();
  EXPECT_THROW(Query(*txn, "SELECT * FROM Users WHERE id = ?", {}),
               std::invalid_argument);
}

TEST_F(SqlTest, PreparedStatementIsReusable) {
  auto stmt = Prepare("SELECT name FROM Users WHERE id = ?");
  auto txn = db_.Begin();
  for (int i = 0; i < 5; ++i) {
    auto r = Execute(*txn, stmt, {V(i)});
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0], V("user" + std::to_string(i)));
  }
  txn->Rollback();
}

TEST_F(SqlTest, UpdatesAreTransactional) {
  auto txn = db_.Begin();
  Query(*txn, "UPDATE Users SET score = 999 WHERE id = 1");
  txn->Rollback();
  EXPECT_EQ(Run("SELECT score FROM Users WHERE id = 1").rows[0][0], V(10));
}

TEST_F(SqlTest, CompositePrimaryKeyPointLookup) {
  db_.CreateTable(SchemaBuilder("Edge")
                      .AddInt("src")
                      .AddInt("dst")
                      .AddInt("w")
                      .PrimaryKey({"src", "dst"})
                      .Build());
  Run("INSERT INTO Edge VALUES (1, 2, 7)");
  Run("INSERT INTO Edge VALUES (2, 1, 9)");
  auto r = Run("SELECT w FROM Edge WHERE src = 1 AND dst = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], V(7));
}

}  // namespace
}  // namespace iq::sql
