// Multi-threaded stress for the IQ server's lock-free statistics plumbing.
//
// N worker threads hammer one IQServer with the full IQ command mix
// (IQget/IQset, QaRead/SaR, QaReg/DaR, IQ-delta/Commit/Abort) on a small,
// hot keyspace while a monitor thread concurrently polls Stats(),
// LeaseCount(), SweepExpired() and FormatStats() — the exact readers that
// used to race with command threads. Each worker keeps client-side tallies
// of the replies it observed; at the end the server counters must balance
// those tallies exactly (relaxed atomics may be momentarily stale but can
// never lose an increment). Run under -DIQ_SANITIZE=thread to prove the
// absence of data races, not just of lost updates.
#include "core/iq_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.h"
#include "core/fault_backend.h"
#include "core/iq_client.h"
#include "core/near_cache.h"
#include "core/sharded_backend.h"
#include "net/channel.h"
#include "net/remote_backend.h"
#include "net/server.h"
#include "net/tcp_channel.h"
#include "net/tcp_server.h"

namespace iq {
namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 4000;
constexpr int kKeys = 32;

struct Tally {
  std::uint64_t tokens_granted = 0;
  std::uint64_t backoffs = 0;
  std::uint64_t iqset_stored = 0;
  std::uint64_t iqset_dropped = 0;
  std::uint64_t qaread_granted = 0;
  std::uint64_t qaread_rejected = 0;
  std::uint64_t sar_stored = 0;
  std::uint64_t sar_dropped = 0;
  std::uint64_t delta_granted = 0;
  std::uint64_t delta_rejected = 0;
  std::uint64_t qaregs = 0;
  std::uint64_t dars = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;

  Tally& operator+=(const Tally& o) {
    tokens_granted += o.tokens_granted;
    backoffs += o.backoffs;
    iqset_stored += o.iqset_stored;
    iqset_dropped += o.iqset_dropped;
    qaread_granted += o.qaread_granted;
    qaread_rejected += o.qaread_rejected;
    sar_stored += o.sar_stored;
    sar_dropped += o.sar_dropped;
    delta_granted += o.delta_granted;
    delta_rejected += o.delta_rejected;
    qaregs += o.qaregs;
    dars += o.dars;
    commits += o.commits;
    aborts += o.aborts;
    return *this;
  }
};

std::string KeyFor(std::uint32_t i) { return "k" + std::to_string(i % kKeys); }

/// Drain one server's complete lease history (events + TRACE_INFO) for the
/// offline checker. The test must size trace_capacity so the rings never
/// wrap — the checker verifies that via the info header and refuses to
/// certify a wrapped ring.
check::TraceSource DrainTrace(IQServer& server, const char* name) {
  check::TraceSource src;
  src.name = name;
  src.events = server.TraceSnapshot(std::numeric_limits<std::size_t>::max());
  src.info = server.TraceInfoTotal();
  src.has_info = true;
  return src;
}

/// End-of-storm lifecycle property: the drained history must replay through
/// the IQ protocol state machine with zero anomalies and, since every storm
/// quiesces (all sessions ended, stranded leases swept), zero open leases.
void ExpectCertifiedHistory(const std::vector<check::TraceSource>& sources) {
  check::CheckerOptions options;
  options.require_quiescent = true;
  check::CheckReport report = check::CheckHistory(sources, {}, options);
  EXPECT_TRUE(report.certified()) << report.Summary();
  EXPECT_GT(report.grants, 0u);
}

/// The command mix runs against the KvsBackend seam so the same worker can
/// hammer a bare IQServer or a ShardedBackend routing over two transports.
void Worker(KvsBackend& server, int seed, Tally& out,
            int iters = kItersPerThread) {
  std::mt19937 rng(static_cast<std::uint32_t>(seed));
  Tally t;
  for (int iter = 0; iter < iters; ++iter) {
    std::string key = KeyFor(rng());
    std::uint32_t roll = rng() % 100;
    if (roll < 40) {
      // Read path: IQget, and always consume a granted I lease with IQset.
      GetReply r = server.IQget(key);
      switch (r.status) {
        case GetReply::Status::kMissGrantedI: {
          ++t.tokens_granted;
          StoreResult sr = server.IQset(key, "computed", r.token);
          sr == StoreResult::kStored ? ++t.iqset_stored : ++t.iqset_dropped;
          break;
        }
        case GetReply::Status::kMissBackoff:
          ++t.backoffs;
          break;
        default:
          break;  // hit / no-lease miss: no counter involved
      }
    } else if (roll < 60) {
      // Refresh writer: QaRead then SaR or Commit or Abort.
      SessionId tid = server.GenID();
      QaReadReply q = server.QaRead(key, tid);
      if (q.status != QaReadReply::Status::kGranted) {
        ++t.qaread_rejected;
        continue;
      }
      ++t.qaread_granted;
      std::uint32_t done = rng() % 4;
      if (done < 2) {
        StoreResult sr = server.SaR(key, "refreshed", q.token);
        sr == StoreResult::kStored ? ++t.sar_stored : ++t.sar_dropped;
        // The session contract ends every session with Commit/Abort (the
        // SaR released the lease; this closes the session server-side).
        server.Commit(tid);
        ++t.commits;
      } else if (done == 2) {
        server.Commit(tid);
        ++t.commits;
      } else {
        server.Abort(tid);
        ++t.aborts;
      }
    } else if (roll < 75) {
      // Incremental writer: IQ-delta then Commit/Abort.
      SessionId tid = server.GenID();
      QuarantineResult q =
          server.IQDelta(tid, key, DeltaOp{DeltaOp::Kind::kIncr, {}, 1});
      if (q != QuarantineResult::kGranted) {
        ++t.delta_rejected;
        continue;
      }
      ++t.delta_granted;
      if (rng() % 2 == 0) {
        server.Commit(tid);
        ++t.commits;
      } else {
        server.Abort(tid);
        ++t.aborts;
      }
    } else if (roll < 90) {
      // Invalidate writer: QaReg then DaR (or Commit/Abort, all release).
      SessionId tid = server.GenID();
      ASSERT_EQ(server.QaReg(tid, key), QuarantineResult::kGranted);
      ++t.qaregs;
      std::uint32_t done = rng() % 4;
      if (done < 2) {
        server.DaR(tid);
        ++t.dars;
      } else if (done == 2) {
        server.Commit(tid);
        ++t.commits;
      } else {
        server.Abort(tid);
        ++t.aborts;
      }
    } else {
      // Plain memcached traffic underneath the lease machinery.
      if (roll % 2 == 0) {
        server.Set(key, "plain");
      } else {
        server.Get(key);
      }
    }
  }
  out = t;
}

TEST(StressTest, StatsBalanceUnderContention) {
  // Rings sized so the full storm fits: the checker below certifies the
  // complete lifecycle history, which requires zero drops.
  IQServer server(CacheStore::Config{.shard_count = 8},
                  IQServer::Config{.lease_lifetime = 0,  // leases never expire
                                   .trace_capacity = 1 << 16});

  std::vector<Tally> tallies(kThreads);
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};

  // Monitor thread: the readers that used to be data races. Values it sees
  // are only sanity-checked (they are moving targets); TSan checks the rest.
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      IQServerStats snap = server.Stats();
      EXPECT_LE(snap.commits,
                static_cast<std::uint64_t>(kThreads) * kItersPerThread);
      EXPECT_LE(server.LeaseCount(), static_cast<std::size_t>(kKeys));
      server.SweepExpired();  // no-op with lifetime 0, but locks every shard
      std::string formatted = net::FormatStats(server);
      EXPECT_NE(formatted.find("STAT i_leases_granted"), std::string::npos);
      std::this_thread::yield();
    }
  });

  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&server, &tallies, i] { Worker(server, /*seed=*/1234 + i, tallies[i]); });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  monitor.join();

  Tally total;
  for (const Tally& t : tallies) total += t;

  IQServerStats s = server.Stats();
  // Grant-side balance: the server counted exactly what clients observed.
  EXPECT_EQ(s.i_granted, total.tokens_granted);
  EXPECT_EQ(s.backoffs, total.backoffs);
  EXPECT_EQ(s.q_inv_granted, total.qaregs);
  EXPECT_EQ(s.q_ref_granted, total.qaread_granted + total.delta_granted);
  EXPECT_EQ(s.q_rejected, total.qaread_rejected + total.delta_rejected);
  EXPECT_EQ(s.stale_sets_dropped, total.iqset_dropped + total.sar_dropped);
  EXPECT_EQ(s.commits, total.commits + total.dars);  // DaR commits
  EXPECT_EQ(s.aborts, total.aborts);
  // Void-side balance: with no expiry, an IQset drops iff its I lease was
  // voided, and each void strands exactly one pending install.
  EXPECT_EQ(s.i_voided, total.iqset_dropped);
  // Every dropped SaR lost its Q(refresh) lease to a QaReg; delta writers'
  // voided leases produce no SaR, hence >=.
  EXPECT_GE(s.q_ref_voided, total.sar_dropped);
  EXPECT_EQ(s.leases_expired, 0u);
  EXPECT_EQ(s.expiry_deletes, 0u);
  // Every session path above released what it acquired.
  EXPECT_EQ(server.LeaseCount(), 0u);
  EXPECT_EQ(total.tokens_granted, total.iqset_stored + total.iqset_dropped);

  // Lifecycle property: the whole storm's lease history replays cleanly —
  // no overlapping Q windows, no unmatched ends, nothing left open.
  ExpectCertifiedHistory({DrainTrace(server, "stress")});
}

TEST(StressTest, ShardedTwoChildBalanceUnderContention) {
  // The same command mix, but routed by per-thread ShardedBackends over a
  // 2-shard tier: one shared in-process child and one shared TCP child.
  // Identical shard names give every thread's router the same ring, so all
  // threads agree on key placement and contend on the same leases.
  IQServer local_child(CacheStore::Config{.shard_count = 8},
                       IQServer::Config{.lease_lifetime = 0,
                                        .trace_capacity = 1 << 14});
  IQServer tcp_child(CacheStore::Config{.shard_count = 8},
                     IQServer::Config{.lease_lifetime = 0,
                                      .trace_capacity = 1 << 14});
  net::TcpServer::Config cfg;
  cfg.workers = 2;
  net::TcpServer tcp(tcp_child, cfg);
  std::string error;
  ASSERT_TRUE(tcp.Start(&error)) << error;

  constexpr int kShardThreads = 4;
  constexpr int kShardIters = 1200;
  std::vector<Tally> tallies(kShardThreads);
  std::vector<std::thread> threads;
  threads.reserve(kShardThreads);
  for (int i = 0; i < kShardThreads; ++i) {
    threads.emplace_back([&, i] {
      std::string conn_error;
      auto channel =
          net::TcpChannel::Connect("127.0.0.1", tcp.port(), &conn_error);
      ASSERT_NE(channel, nullptr) << conn_error;
      net::RemoteBackend remote(*channel);
      ShardedBackend router(
          {{"s0", &local_child, 1, nullptr, nullptr, nullptr, nullptr},
           {"s1", &remote, 1, nullptr, nullptr, nullptr, nullptr}});
      Worker(router, /*seed=*/5150 + i, tallies[i], kShardIters);
    });
  }
  for (auto& th : threads) th.join();
  tcp.Stop();

  Tally total;
  for (const Tally& t : tallies) total += t;

  IQServerStats s;
  {
    // Exact balance must hold over the SUM of both children: every grant,
    // reject, commit and abort landed on exactly one shard.
    IQServerStats a = local_child.Stats();
    IQServerStats b = tcp_child.Stats();
    s.i_granted = a.i_granted + b.i_granted;
    s.i_voided = a.i_voided + b.i_voided;
    s.q_ref_voided = a.q_ref_voided + b.q_ref_voided;
    s.backoffs = a.backoffs + b.backoffs;
    s.stale_sets_dropped = a.stale_sets_dropped + b.stale_sets_dropped;
    s.q_inv_granted = a.q_inv_granted + b.q_inv_granted;
    s.q_ref_granted = a.q_ref_granted + b.q_ref_granted;
    s.q_rejected = a.q_rejected + b.q_rejected;
    s.leases_expired = a.leases_expired + b.leases_expired;
    s.expiry_deletes = a.expiry_deletes + b.expiry_deletes;
    s.commits = a.commits + b.commits;
    s.aborts = a.aborts + b.aborts;
  }
  EXPECT_EQ(s.i_granted, total.tokens_granted);
  EXPECT_EQ(s.backoffs, total.backoffs);
  EXPECT_EQ(s.q_inv_granted, total.qaregs);
  EXPECT_EQ(s.q_ref_granted, total.qaread_granted + total.delta_granted);
  EXPECT_EQ(s.q_rejected, total.qaread_rejected + total.delta_rejected);
  EXPECT_EQ(s.stale_sets_dropped, total.iqset_dropped + total.sar_dropped);
  EXPECT_EQ(s.commits, total.commits + total.dars);
  // Every client-side abort fans out to exactly one child (single-key
  // sessions), and every Q reject triggers the router's release-all fan-out
  // abort of the one shard the session had touched.
  EXPECT_EQ(s.aborts,
            total.aborts + total.qaread_rejected + total.delta_rejected);
  EXPECT_EQ(s.i_voided, total.iqset_dropped);
  EXPECT_GE(s.q_ref_voided, total.sar_dropped);
  EXPECT_EQ(s.leases_expired, 0u);
  // Nothing stranded on either transport.
  EXPECT_EQ(local_child.LeaseCount(), 0u);
  EXPECT_EQ(tcp_child.LeaseCount(), 0u);
  // The ring really split the work across both children.
  EXPECT_GT(local_child.Stats().commits, 0u);
  EXPECT_GT(tcp_child.Stats().commits, 0u);

  // Lifecycle property over BOTH children's drained histories: each key
  // lives on exactly one child, so the two-source merge must replay every
  // key's lifecycle cleanly across the in-process and TCP transports.
  ExpectCertifiedHistory(
      {DrainTrace(local_child, "s0"), DrainTrace(tcp_child, "s1")});
}

TEST(StressTest, AffinityModeBalanceUnderContention) {
  // The full command mix hammered through a shard-affinity TcpServer
  // (DESIGN.md §4.7): every thread's requests scatter across worker-owned
  // partitions, so the cross-core mailbox, ordered response slots and
  // inline-fallback path all run hot under TSan — while the exact
  // client-vs-server counter balance must come out identical to the
  // in-process and shared-mode storms.
  IQServer server(CacheStore::Config{.shard_count = 8},
                  IQServer::Config{.lease_lifetime = 0,
                                   .trace_capacity = 1 << 14});
  net::TcpServer::Config cfg;
  cfg.workers = 4;  // 8 shards -> 4 partitions of 2
  cfg.affinity = true;
  cfg.mailbox_capacity = 64;  // small enough that fallbacks happen too
  net::TcpServer tcp(server, cfg);
  std::string error;
  ASSERT_TRUE(tcp.Start(&error)) << error;

  constexpr int kAffThreads = 4;
  constexpr int kAffIters = 1500;
  std::vector<Tally> tallies(kAffThreads);
  std::vector<std::thread> threads;
  threads.reserve(kAffThreads);
  for (int i = 0; i < kAffThreads; ++i) {
    threads.emplace_back([&, i] {
      std::string conn_error;
      auto channel =
          net::TcpChannel::Connect("127.0.0.1", tcp.port(), &conn_error);
      ASSERT_NE(channel, nullptr) << conn_error;
      net::RemoteBackend remote(*channel);
      Worker(remote, /*seed=*/7200 + i, tallies[i], kAffIters);
    });
  }
  for (auto& th : threads) th.join();

  Tally total;
  for (const Tally& t : tallies) total += t;

  IQServerStats s = server.Stats();
  EXPECT_EQ(s.i_granted, total.tokens_granted);
  EXPECT_EQ(s.backoffs, total.backoffs);
  EXPECT_EQ(s.q_inv_granted, total.qaregs);
  EXPECT_EQ(s.q_ref_granted, total.qaread_granted + total.delta_granted);
  EXPECT_EQ(s.q_rejected, total.qaread_rejected + total.delta_rejected);
  EXPECT_EQ(s.stale_sets_dropped, total.iqset_dropped + total.sar_dropped);
  EXPECT_EQ(s.commits, total.commits + total.dars);
  EXPECT_EQ(s.aborts, total.aborts);
  EXPECT_EQ(s.i_voided, total.iqset_dropped);
  EXPECT_GE(s.q_ref_voided, total.sar_dropped);
  EXPECT_EQ(s.leases_expired, 0u);
  EXPECT_EQ(server.LeaseCount(), 0u);

  // Wire-side balance: every request was executed exactly once, via
  // exactly one of the three affinity placements.
  net::TcpServerStats w = tcp.Stats();
  EXPECT_EQ(w.affinity_forwards + w.affinity_inline + w.affinity_fallbacks,
            w.requests);
  EXPECT_GT(w.affinity_forwards, 0u);
  tcp.Stop();

  // Affinity execution must leave the same certifiable history as shared
  // mode: mailbox handoffs and inline fallbacks cannot reorder or drop
  // lease transitions within any key's owning shard ring.
  ExpectCertifiedHistory({DrainTrace(server, "affinity")});
}

TEST(StressTest, FlappingShardTripsHealsAndStrandsNoLeases) {
  // One shard flaps (a FaultBackend toggling down/up under the router's
  // circuit breaker) while worker threads run the IQ mix against a shared
  // 2-shard router. Transport errors surface as statuses — never as grants —
  // so the grant-side balance between client observations and child counters
  // must stay EXACT through every trip and recovery; leases stranded by
  // commits that could not reach the down shard must drain by expiry.
  IQServer s0(CacheStore::Config{.shard_count = 8},
              IQServer::Config{.lease_lifetime = 20 * kNanosPerMilli,
                               .trace_capacity = 1 << 14});
  IQServer s1(CacheStore::Config{.shard_count = 8},
              IQServer::Config{.lease_lifetime = 20 * kNanosPerMilli,
                               .trace_capacity = 1 << 14});
  FaultBackend flappy(s0);
  ShardedBackend::Config rcfg;
  rcfg.down_after_errors = 2;
  rcfg.probe_interval = 200 * kNanosPerMicro;
  ShardedBackend router(
      {{"s0", &flappy, 1, {}, {}, {}, {}}, {"s1", &s1, 1, {}, {}, {}, {}}},
      rcfg);

  struct FlapTally {
    std::uint64_t i_granted = 0;
    std::uint64_t q_granted = 0;
    std::uint64_t q_rejected = 0;
    std::uint64_t transport_errors = 0;
  };
  constexpr int kFlapThreads = 4;
  constexpr int kFlapIters = 3000;
  std::vector<FlapTally> tallies(kFlapThreads);

  std::atomic<bool> stop_flapping{false};
  std::thread flapper([&] {
    bool down = false;
    while (!stop_flapping.load(std::memory_order_acquire)) {
      down = !down;
      flappy.SetDown(down);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    flappy.SetDown(false);
  });

  std::vector<std::thread> threads;
  threads.reserve(kFlapThreads);
  for (int i = 0; i < kFlapThreads; ++i) {
    threads.emplace_back([&, i] {
      std::mt19937 rng(static_cast<std::uint32_t>(777 + i));
      FlapTally t;
      for (int iter = 0; iter < kFlapIters; ++iter) {
        std::string key = KeyFor(rng());
        if (rng() % 2 == 0) {
          GetReply r = router.IQget(key);
          if (r.status == GetReply::Status::kTransportError) {
            ++t.transport_errors;  // degrade: the caller would read the RDBMS
          } else if (r.status == GetReply::Status::kMissGrantedI) {
            ++t.i_granted;
            if (router.IQset(key, "v", r.token) ==
                StoreResult::kTransportError) {
              ++t.transport_errors;
            }
          }
        } else {
          SessionId tid = router.GenID();
          QaReadReply q = router.QaRead(key, tid);
          if (q.status == QaReadReply::Status::kTransportError) {
            ++t.transport_errors;
            router.Abort(tid);
            continue;
          }
          if (q.status == QaReadReply::Status::kReject) {
            ++t.q_rejected;  // the router already released the session
            continue;
          }
          ++t.q_granted;
          if (router.SaR(key, "w", q.token) == StoreResult::kTransportError) {
            ++t.transport_errors;
          }
          if (rng() % 2 == 0) {
            router.Commit(tid);
          } else {
            router.Abort(tid);
          }
        }
      }
      tallies[i] = t;
    });
  }
  for (auto& th : threads) th.join();
  stop_flapping.store(true, std::memory_order_release);
  flapper.join();

  FlapTally total;
  for (const FlapTally& t : tallies) {
    total.i_granted += t.i_granted;
    total.q_granted += t.q_granted;
    total.q_rejected += t.q_rejected;
    total.transport_errors += t.transport_errors;
  }
  // The flap actually bit, tripped the breaker, and healed at least once.
  EXPECT_GT(total.transport_errors, 0u);
  ShardedBackendStats rs = router.router_stats();
  EXPECT_GE(rs.shard_trips, 1u);
  EXPECT_GE(rs.shard_recoveries, 1u);
  EXPECT_GT(rs.transport_errors, 0u);
  // Both shards did real work between the flaps.
  EXPECT_GT(s0.Stats().i_granted + s0.Stats().q_ref_granted, 0u);
  EXPECT_GT(s1.Stats().i_granted + s1.Stats().q_ref_granted, 0u);

  // Exact grant-side balance: a failed call never reached the child and a
  // granted call always did — transport errors cannot manufacture or lose
  // grants on either side.
  IQServerStats a = s0.Stats();
  IQServerStats b = s1.Stats();
  EXPECT_EQ(a.i_granted + b.i_granted, total.i_granted);
  EXPECT_EQ(a.q_ref_granted + b.q_ref_granted, total.q_granted);
  EXPECT_EQ(a.q_rejected + b.q_rejected, total.q_rejected);

  // Heal shard0, then let every lease stranded by a skipped Commit/Abort
  // expire; the sweep must drain both children to zero.
  std::string probe_key;
  for (int i = 0; router.ShardFor(probe_key = "k" + std::to_string(i)) != 0;
       ++i) {
  }
  for (int i = 0; i < 1000 && router.ShardDown(0); ++i) {
    router.IQget(probe_key);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_FALSE(router.ShardDown(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  s0.SweepExpired();
  s1.SweepExpired();
  EXPECT_EQ(s0.LeaseCount(), 0u);
  EXPECT_EQ(s1.LeaseCount(), 0u);

  // Even through trips, heals and expiry-drained strands, the surviving
  // lease history must replay cleanly: transport errors fail before the
  // child, so they can never leave a half-recorded lifecycle behind.
  ExpectCertifiedHistory({DrainTrace(s0, "flappy"), DrainTrace(s1, "s1")});
}

TEST(StressTest, LoopbackRequestCounterExactUnderThreads) {
  IQServer server;
  net::LoopbackChannel channel(server);
  constexpr int kClientThreads = 4;
  constexpr int kOpsPerThread = 500;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Lock-free monitoring read racing the increments.
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::uint64_t now = channel.requests();
      EXPECT_GE(now, last);  // monotonic
      last = now;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (int i = 0; i < kClientThreads; ++i) {
    clients.emplace_back([&channel, i] {
      net::RemoteCacheClient client(channel);
      for (int op = 0; op < kOpsPerThread; ++op) {
        std::string key = "c" + std::to_string(i) + "-" + std::to_string(op % 16);
        if (op % 2 == 0) {
          client.Set(key, "v");
        } else {
          client.Get(key);
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(channel.requests(),
            static_cast<std::uint64_t>(kClientThreads) * kOpsPerThread);
  // The dispatcher recorded a latency sample for every request.
  std::string stats = net::FormatStats(server);
  EXPECT_NE(stats.find("STAT cmd_store_count"), std::string::npos);
  EXPECT_NE(stats.find("STAT cmd_get_count"), std::string::npos);
}

TEST(StressTest, NearCacheStormCountersBalanceExactly) {
  // One IQClient's near cache (DESIGN.md §4.10) shared by many sessions:
  // reader threads hammer Get() (near hits, grant installs, self-expiry on
  // a sub-millisecond validity) while writer threads run invalidate and
  // refresh sessions on the same keys (eager Invalidate() plus the
  // Commit/Abort re-invalidation sweep) and a monitor thread polls
  // stats()/size() concurrently. Under -DIQ_SANITIZE=thread this certifies
  // the cache mutex protocol; at quiescence every stored entry must have
  // left in exactly one way:
  //   inserts == size + replaced + evictions + invalidated + expired.
  IQServer server(CacheStore::Config{.shard_count = 4},
                  [] {
                    IQServer::Config cfg;
                    cfg.near_validity = 300 * kNanosPerMicro;  // real clock
                    return cfg;
                  }());
  IQClient::Config ccfg;
  ccfg.backoff_base = 10 * kNanosPerMicro;
  ccfg.backoff_cap = 200 * kNanosPerMicro;
  ccfg.near_capacity = 16;  // < kKeys so LRU evictions happen under load
  IQClient client(server, ccfg);
  NearCache* near = client.near_cache();
  ASSERT_NE(near, nullptr);

  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    // Concurrent snapshot readers: the counters move, only TSan judges.
    while (!stop.load(std::memory_order_acquire)) {
      NearCache::Stats snap = near->stats();
      EXPECT_GE(snap.inserts, snap.replaced);
      EXPECT_LE(near->size(), near->capacity());
      std::this_thread::yield();
    }
  });

  constexpr int kNearThreads = 6;
  constexpr int kNearIters = 2500;
  std::vector<std::thread> threads;
  threads.reserve(kNearThreads);
  for (int i = 0; i < kNearThreads; ++i) {
    threads.emplace_back([&, i] {
      std::mt19937 rng(static_cast<std::uint32_t>(4242 + i));
      auto session = client.NewSession();
      for (int iter = 0; iter < kNearIters; ++iter) {
        std::string key = KeyFor(rng());
        std::uint32_t roll = rng() % 100;
        if (roll < 70) {
          // Read path: hits populate the near cache (server grants a
          // validity interval), repeats serve locally until expiry.
          ClientGetResult r = session->Get(key, /*max_retries=*/2);
          if (r.status == ClientGetResult::Status::kMissRecompute) {
            session->Put(key, "v" + std::to_string(iter));
          }
        } else if (roll < 85) {
          // Invalidate writer: eager near-invalidate at Quarantine, again
          // at Commit/Abort.
          if (session->Quarantine(key) == ClientQResult::kGranted) {
            rng() % 2 == 0 ? session->Commit() : session->Abort();
          } else {
            session->Abort();
          }
        } else {
          // Refresh writer.
          std::optional<std::string> old;
          if (session->QaRead(key, old) == ClientQResult::kGranted) {
            session->SaR(key, "r" + std::to_string(iter));
            session->Commit();
          } else {
            session->Abort();
          }
        }
      }
      // Quiesce this thread's session: release leases, re-invalidate any
      // keys it wrote.
      session->Abort();
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  monitor.join();
  server.SweepExpired();  // reclaim holdover deletes + lapsed horizons

  // The storm actually exercised every transition at least once.
  NearCache::Stats s = near->stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.inserts, 0u);
  EXPECT_GT(s.invalidated, 0u);
  EXPECT_GT(server.Stats().near_grants, 0u);
  // Exact accounting at quiescence: every entry ever stored is either
  // still resident or left by exactly one of the four exits. A lost or
  // double-counted transition under contention breaks this equality.
  EXPECT_EQ(s.inserts, static_cast<std::uint64_t>(near->size()) + s.replaced +
                           s.evictions + s.invalidated + s.expired);
}

TEST(StressTest, OptimisticReadStormStaysConsistent) {
  // The mutex-free IQget fast path (DESIGN.md §4.6) races against the full
  // write-side lease machinery: refresh sessions (QaRead/SaR), invalidate
  // sessions (QaReg/Commit), plain sets/deletes, and budget-driven
  // evictions, all on the same hot keys. Every hit a reader observes must
  // be a value the key legitimately held (prefix-tagged), and the store
  // must end structurally consistent. Run under -DIQ_SANITIZE=thread to
  // certify the seqlock protocol.
  IQServer server(
      CacheStore::Config{.shard_count = 4, .memory_budget_bytes = 16000},
      IQServer::Config{});
  constexpr int kHotKeys = 24;
  auto key_for = [](int k) { return "hot" + std::to_string(k); };
  for (int k = 0; k < kHotKeys; ++k) {
    server.store().Set(key_for(k), "hot" + std::to_string(k) + "=0");
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_reads{0};
  std::atomic<std::uint64_t> opt_era_hits{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t local_hits = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < kHotKeys; ++k) {
          GetReply r = server.IQget(key_for(k), 0);
          if (r.status != GetReply::Status::kHit) continue;
          ++local_hits;
          std::string want = "hot" + std::to_string(k) + "=";
          if (r.value.compare(0, want.size(), want) != 0) {
            bad_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      opt_era_hits.fetch_add(local_hits, std::memory_order_relaxed);
    });
  }

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      for (int gen = 1; gen <= 1200; ++gen) {
        int k = (gen * 5 + t * 11) % kHotKeys;
        std::string key = key_for(k);
        std::string value = "hot" + std::to_string(k) + "=" +
                            std::to_string(t * 100000 + gen);
        switch (gen % 5) {
          case 0: {  // refresh write session (QaRead -> SaR)
            SessionId sid = server.GenID();
            QaReadReply q = server.QaRead(key, sid);
            if (q.status == QaReadReply::Status::kGranted) {
              server.SaR(key, value, q.token);
            }
            break;
          }
          case 1: {  // invalidate write session (QaReg -> Commit)
            SessionId sid = server.GenID();
            server.QaReg(sid, key);
            server.Commit(sid);
            break;
          }
          case 2:
            server.store().Delete(key);
            break;
          default:
            server.store().Set(key, value);
            break;
        }
      }
    });
  }

  for (auto& w : writers) w.join();
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  EXPECT_GT(opt_era_hits.load(), 0u);
  EXPECT_EQ(server.store().CheckInvariants(), "");
  // (The lease table need not be empty: reader misses hand out I leases
  // nobody installs; they age out via the normal expiry path.)
}

}  // namespace
}  // namespace iq
