// End-to-end tests of the TCP front end: TcpServer (epoll workers) driven
// both through TcpChannel/RemoteCacheClient and through raw sockets that
// misbehave on purpose (split writes, garbage, abrupt EOF).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/iq_client.h"
#include "core/iq_server.h"
#include "core/partition.h"
#include "net/channel.h"
#include "net/remote_backend.h"
#include "net/tcp_channel.h"
#include "net/tcp_server.h"

namespace iq::net {
namespace {

class TcpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TcpServer::Config cfg;
    cfg.workers = 2;
    tcp_ = std::make_unique<TcpServer>(server_, cfg);
    std::string error;
    ASSERT_TRUE(tcp_->Start(&error)) << error;
  }

  std::unique_ptr<TcpChannel> Connect() {
    std::string error;
    auto ch = TcpChannel::Connect("127.0.0.1", tcp_->port(), &error);
    EXPECT_NE(ch, nullptr) << error;
    return ch;
  }

  /// A blocking raw socket to the server, for byte-level abuse.
  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(tcp_->port());
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
    return fd;
  }

  /// Blocking-read from fd until the accumulated bytes contain needle (or
  /// EOF/error). Returns everything read.
  static std::string ReadUntil(int fd, const std::string& needle) {
    std::string got;
    char buf[4096];
    while (got.find(needle) == std::string::npos) {
      ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r <= 0) break;
      got.append(buf, static_cast<std::size_t>(r));
    }
    return got;
  }

  /// True once pred() holds, polling for up to two seconds.
  static bool Eventually(const std::function<bool()>& pred) {
    for (int i = 0; i < 400; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
  }

  IQServer server_;
  std::unique_ptr<TcpServer> tcp_;
};

TEST_F(TcpServerTest, BasicRoundTripsThroughRemoteClient) {
  auto channel = Connect();
  RemoteCacheClient client(*channel);
  EXPECT_EQ(client.Set("k", "hello"), StoreResult::kStored);
  auto item = client.Get("k");
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->value, "hello");
  EXPECT_FALSE(client.Get("missing").has_value());
}

TEST_F(TcpServerTest, MultiGetOverTheWire) {
  auto channel = Connect();
  RemoteCacheClient client(*channel);
  client.Set("a", "one");
  client.Set("c", "three");
  auto hits = client.MultiGet({"a", "b", "c"});
  ASSERT_EQ(hits.size(), 3u);
  ASSERT_TRUE(hits[0].has_value());
  EXPECT_EQ(hits[0]->value, "one");
  EXPECT_FALSE(hits[1].has_value());
  ASSERT_TRUE(hits[2].has_value());
  EXPECT_EQ(hits[2]->value, "three");
}

TEST_F(TcpServerTest, PipelinedRequestsSplitAtArbitraryByteBoundaries) {
  // One logical burst of pipelined requests, delivered in 3-byte slivers
  // with tiny pauses: the server must reassemble and answer all of them in
  // order on this single connection.
  int fd = RawConnect();
  std::string burst =
      "set a 0 0 1\r\nx\r\n"
      "set b 0 0 1\r\ny\r\n"
      "get a b\r\n"
      "get missing\r\n"
      "incr z 1\r\n";
  for (std::size_t off = 0; off < burst.size(); off += 3) {
    std::string piece = burst.substr(off, 3);
    ASSERT_EQ(::write(fd, piece.data(), piece.size()),
              static_cast<ssize_t>(piece.size()));
    if (off % 9 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::string reply = ReadUntil(fd, "NOT_FOUND\r\n");
  EXPECT_NE(reply.find("STORED\r\nSTORED\r\n"), std::string::npos);
  EXPECT_NE(reply.find("VALUE a 0 1\r\nx\r\nVALUE b 0 1\r\ny\r\nEND\r\n"),
            std::string::npos);
  EXPECT_NE(reply.find("END\r\nEND\r\nNOT_FOUND\r\n"), std::string::npos);
  ::close(fd);
}

TEST_F(TcpServerTest, MalformedInputGetsClientErrorAndConnectionSurvives) {
  int fd = RawConnect();
  std::string garbage = "frobnicate the bits\r\nget k\r\n";
  ASSERT_EQ(::write(fd, garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  // The bad line draws CLIENT_ERROR; the valid request after it still runs
  // on the same connection, same worker.
  std::string reply = ReadUntil(fd, "END\r\n");
  EXPECT_NE(reply.find("CLIENT_ERROR"), std::string::npos);
  EXPECT_NE(reply.find("END\r\n"), std::string::npos);

  // And the server as a whole is still healthy for other connections.
  auto channel = Connect();
  RemoteCacheClient client(*channel);
  EXPECT_EQ(client.Set("after", "ok"), StoreResult::kStored);
  ::close(fd);
}

TEST_F(TcpServerTest, QuitAndEofBothTearDownCleanly) {
  // quit: server closes the connection without a reply.
  int fd = RawConnect();
  ASSERT_EQ(::write(fd, "quit\r\n", 6), 6);
  char buf[16];
  EXPECT_EQ(::read(fd, buf, sizeof(buf)), 0);  // clean FIN, no bytes
  ::close(fd);

  // EOF: client vanishes mid-session; the worker reaps the connection.
  int fd2 = RawConnect();
  ASSERT_EQ(::write(fd2, "set k 0 0 1\r\nv\r\n", 16), 16);
  ReadUntil(fd2, "STORED\r\n");
  ::close(fd2);

  EXPECT_TRUE(Eventually([this] { return tcp_->Stats().conn_active == 0; }));
  std::uint64_t accepted = tcp_->Stats().conn_accepted;
  EXPECT_GE(accepted, 2u);

  // Still serving.
  auto channel = Connect();
  RemoteCacheClient client(*channel);
  EXPECT_TRUE(client.Get("k").has_value());
}

TEST_F(TcpServerTest, WireCountersShowUpInStats) {
  auto channel = Connect();
  RemoteCacheClient client(*channel);
  client.Set("k", "v");
  std::string stats = client.Stats();
  for (const char* name :
       {"STAT conn_accepted ", "STAT conn_active ", "STAT bytes_read ",
        "STAT bytes_written ", "STAT net_requests "}) {
    EXPECT_NE(stats.find(name), std::string::npos) << name;
  }
  TcpServerStats s = tcp_->Stats();
  EXPECT_GE(s.conn_accepted, 1u);
  EXPECT_GE(s.conn_active, 1u);
  EXPECT_GT(s.bytes_read, 0u);
  EXPECT_GT(s.bytes_written, 0u);
  EXPECT_GE(s.requests, 2u);
}

TEST(TcpNearCacheTest, RepeatedGetsWithinValidityCostOneWireRequest) {
  // The tentpole claim, asserted at the wire: once a hit carries a validity
  // grant, repeated Gets inside the interval are served from the client's
  // near cache and the server sees NO further requests.
  IQServer::Config cfg;
  cfg.near_validity = 500 * kNanosPerMilli;
  IQServer server(CacheStore::Config{}, cfg);
  TcpServer::Config net_cfg;
  net_cfg.workers = 2;
  TcpServer tcp(server, net_cfg);
  std::string error;
  ASSERT_TRUE(tcp.Start(&error)) << error;
  server.store().Set("k", "v");

  auto channel = TcpChannel::Connect("127.0.0.1", tcp.port(), &error);
  ASSERT_NE(channel, nullptr) << error;
  RemoteBackend backend(*channel);
  IQClient::Config client_cfg;
  client_cfg.near_capacity = 8;
  IQClient client(backend, client_cfg);
  auto session = client.NewSession();

  auto first = session->Get("k");
  ASSERT_EQ(first.status, ClientGetResult::Status::kHit);
  EXPECT_FALSE(first.near_hit);  // populated over the wire, grant attached

  std::uint64_t baseline = tcp.Stats().requests;
  for (int i = 0; i < 10; ++i) {
    auto r = session->Get("k");
    ASSERT_EQ(r.status, ClientGetResult::Status::kHit);
    EXPECT_TRUE(r.near_hit);
    EXPECT_EQ(r.value, "v");
    EXPECT_GT(r.near_remaining, 0);
  }
  EXPECT_EQ(tcp.Stats().requests, baseline);  // zero round trips
  EXPECT_EQ(client.near_cache()->stats().hits, 10u);
  EXPECT_EQ(server.Stats().near_grants, 1u);
  tcp.Stop();
}

TEST_F(TcpServerTest, PipelinedChannelDrainsInOrder) {
  auto channel = Connect();
  constexpr int kBatch = 32;
  for (int i = 0; i < kBatch; ++i) {
    Request r;
    r.command = Command::kSet;
    r.key = "p:" + std::to_string(i);
    r.data = std::to_string(i);
    channel->SendNoWait(r);
  }
  ASSERT_TRUE(channel->Flush());
  std::vector<Response> stored = channel->Drain();
  ASSERT_EQ(stored.size(), static_cast<std::size_t>(kBatch));
  for (const Response& r : stored) EXPECT_EQ(r.type, ResponseType::kStored);

  for (int i = 0; i < kBatch; ++i) {
    Request r;
    r.command = Command::kGet;
    r.key = "p:" + std::to_string(i);
    channel->SendNoWait(r);
  }
  ASSERT_TRUE(channel->Flush());
  std::vector<Response> got = channel->Drain();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBatch));
  for (int i = 0; i < kBatch; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].data, std::to_string(i))
        << "response order must match request order";
  }
}

TEST_F(TcpServerTest, ConcurrentConnectionsKeepExactCounterBalance) {
  // The acceptance gauntlet in miniature: several connections run the full
  // IQ refresh protocol (GenID/QaRead/SaR with retry on rejection) against
  // one counter. Every committed increment must land exactly once.
  {
    auto setup = Connect();
    RemoteCacheClient client(*setup);
    client.Set("n", "0");
  }
  constexpr int kThreads = 4;
  constexpr int kIncrements = 40;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &committed] {
      auto channel = Connect();
      ASSERT_NE(channel, nullptr);
      RemoteCacheClient client(*channel);
      for (int i = 0; i < kIncrements; ++i) {
        SessionId session = client.GenID();
        QaReadReply q = client.QaRead("n", session);
        if (q.status != QaReadReply::Status::kGranted) {
          client.Abort(session);
          --i;  // retry
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          continue;
        }
        std::string next = std::to_string(std::stoll(*q.value) + 1);
        client.SaR("n", std::optional<std::string>(next), q.token);
        committed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  auto channel = Connect();
  RemoteCacheClient check(*channel);
  EXPECT_EQ(check.Get("n")->value, std::to_string(committed.load()));
  EXPECT_EQ(committed.load(), kThreads * kIncrements);
}

TEST_F(TcpServerTest, HugeLengthClaimDrawsClientErrorWithoutDesync) {
  // `set` claiming a near-SIZE_MAX payload must not wrap the parser's
  // terminator arithmetic into accepting the request; the command draws
  // CLIENT_ERROR and the next pipelined request is answered in order.
  int fd = RawConnect();
  std::string burst = "set k 0 0 18446744073709551614\r\nget k\r\n";
  ASSERT_EQ(::write(fd, burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));
  std::string reply = ReadUntil(fd, "END\r\n");
  EXPECT_NE(reply.find("CLIENT_ERROR"), std::string::npos);
  // Nothing was stored and the connection is still usable.
  ASSERT_EQ(::write(fd, "get k\r\n", 7), 7);
  EXPECT_NE(ReadUntil(fd, "END\r\n").find("END\r\n"), std::string::npos);
  ::close(fd);
}

TEST(TcpServerBackpressure, UnreadResponsesThrottleInsteadOfGrowingMemory) {
  // A client that pipelines many reads of a large value and consumes none of
  // the replies must be paused (response backlog capped, EPOLLIN dropped),
  // then served to completion once it starts reading — with every response
  // intact and in order.
  IQServer server;
  TcpServer::Config cfg;
  cfg.workers = 1;
  cfg.max_response_bytes = 64u << 10;  // far below the total response volume
  TcpServer tcp(server, cfg);
  std::string error;
  ASSERT_TRUE(tcp.Start(&error)) << error;

  const std::string big(32u << 10, 'v');
  {
    auto ch = TcpChannel::Connect("127.0.0.1", tcp.port(), &error);
    ASSERT_NE(ch, nullptr) << error;
    RemoteCacheClient client(*ch);
    ASSERT_EQ(client.Set("big", big), StoreResult::kStored);
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(tcp.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);

  constexpr int kGets = 200;  // ~6.4 MB of responses, 100x the cap
  std::string burst;
  for (int i = 0; i < kGets; ++i) burst += "get big\r\n";
  ASSERT_EQ(::write(fd, burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));

  const std::string one_response =
      "VALUE big 0 " + std::to_string(big.size()) + "\r\n" + big + "\r\nEND\r\n";
  std::string got;
  got.reserve(one_response.size() * kGets);
  char buf[64 * 1024];
  while (got.size() < one_response.size() * kGets) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(r, 0) << "connection died under backpressure";
    got.append(buf, static_cast<std::size_t>(r));
  }
  for (int i = 0; i < kGets; ++i) {
    EXPECT_EQ(got.compare(i * one_response.size(), one_response.size(),
                          one_response),
              0)
        << "response " << i << " corrupted or out of order";
  }
  ::close(fd);
}

// A server that accepts the connection and then never replies must not hang
// the client: the io deadline expires, the operation fails as a transport
// error, and the channel reports itself dead.
TEST(TcpChannelDeadlineTest, SilentServerTripsTheIoDeadline) {
  int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  // Accept in the background, read the request, never answer.
  std::thread mute([lfd] {
    int fd = ::accept(lfd, nullptr, nullptr);
    if (fd >= 0) {
      char buf[256];
      while (::read(fd, buf, sizeof(buf)) > 0) {
      }
      ::close(fd);
    }
  });

  TcpChannel::Options opt;
  opt.connect_timeout_ms = 1000;
  opt.io_timeout_ms = 100;
  std::string error;
  auto channel =
      TcpChannel::Connect("127.0.0.1", ntohs(addr.sin_port), opt, &error);
  ASSERT_NE(channel, nullptr) << error;

  const Clock& clock = SteadyClock::Instance();
  Nanos start = clock.Now();
  std::string reply;
  EXPECT_FALSE(channel->RoundTrip("get k\r\n", &reply));
  Nanos elapsed = clock.Now() - start;
  EXPECT_GE(elapsed, 90 * kNanosPerMilli);  // waited for the deadline...
  EXPECT_LT(elapsed, 2 * kNanosPerSec);     // ...but nowhere near forever
  // The deadline tore the connection down; later operations fail fast.
  EXPECT_FALSE(channel->RoundTrip("get k\r\n", &reply));

  channel.reset();  // EOF lets the mute server's read loop exit
  mute.join();
  ::close(lfd);
}

TEST_F(TcpServerTest, StopIsIdempotentAndDropsConnections) {
  auto channel = Connect();
  RemoteCacheClient client(*channel);
  client.Set("k", "v");
  tcp_->Stop();
  tcp_->Stop();  // second call is a no-op
  EXPECT_EQ(tcp_->Stats().conn_active, 0u);
}

// ---------------------------------------------------------------------------
// Shard-affinity (thread-per-core) mode — DESIGN.md §4.7.
// ---------------------------------------------------------------------------

TEST(ShardPartitionTest, OwnershipIsTotalStableArithmetic) {
  ShardPartition p(/*shard_count=*/16, /*partitions=*/4);
  EXPECT_EQ(p.shard_count(), 16u);
  EXPECT_EQ(p.partitions(), 4u);
  for (std::size_t shard = 0; shard < 16; ++shard) {
    EXPECT_EQ(p.OwnerOfShard(shard), shard % 4);
    EXPECT_TRUE(p.Owns(shard % 4, shard));
    EXPECT_FALSE(p.Owns((shard + 1) % 4, shard));
  }
  // OwnerOfHash must agree with the store's own shard placement.
  for (std::uint64_t h : {0ull, 1ull, 15ull, 16ull, 12345678901234ull}) {
    EXPECT_EQ(p.OwnerOfHash(h), p.OwnerOfShard(h % 16));
  }
  EXPECT_EQ(p.HomeOfSession(7), 7u % 4);
}

TEST(ShardPartitionTest, PartitionCountIsClampedToShardCount) {
  // More partitions than shards would leave workers owning nothing.
  EXPECT_EQ(ShardPartition(4, 64).partitions(), 4u);
  EXPECT_EQ(ShardPartition(4, 0).partitions(), 1u);
  EXPECT_EQ(ShardPartition(0, 0).shard_count(), 1u);  // degenerate but total
}

/// TcpServerTest with affinity mode on and enough workers that the 16-shard
/// store splits into 4 partitions — most of a connection's requests are
/// cross-core forwards.
class AffinityServerTest : public TcpServerTest {
 protected:
  void SetUp() override {
    TcpServer::Config cfg;
    cfg.workers = 4;
    cfg.affinity = true;
    tcp_ = std::make_unique<TcpServer>(server_, cfg);
    std::string error;
    ASSERT_TRUE(tcp_->Start(&error)) << error;
  }

  std::size_t OwnerOf(const std::string& key) const {
    return tcp_->partition().OwnerOfHash(CacheStore::HashKey(key));
  }

  /// Keys covering every partition at least `per_owner` times, so a
  /// pipelined burst is guaranteed to mix own-shard and cross-shard work no
  /// matter which worker the connection landed on.
  std::vector<std::string> KeysSpanningOwners(std::size_t per_owner) {
    std::vector<std::size_t> seen(tcp_->partition().partitions(), 0);
    std::vector<std::string> keys;
    for (int i = 0; keys.size() < seen.size() * per_owner; ++i) {
      std::string key = "span:" + std::to_string(i);
      if (seen[OwnerOf(key)] >= per_owner) continue;
      ++seen[OwnerOf(key)];
      keys.push_back(std::move(key));
    }
    return keys;
  }
};

TEST_F(AffinityServerTest, MixedOwnerPipelineDrainsInOrder) {
  auto channel = Connect();
  std::vector<std::string> keys = KeysSpanningOwners(8);  // 32 keys, 4 owners
  for (std::size_t i = 0; i < keys.size(); ++i) {
    Request r;
    r.command = Command::kSet;
    r.key = keys[i];
    r.data = std::to_string(i);
    channel->SendNoWait(r);
  }
  ASSERT_TRUE(channel->Flush());
  std::vector<Response> stored = channel->Drain();
  ASSERT_EQ(stored.size(), keys.size());
  for (const Response& r : stored) EXPECT_EQ(r.type, ResponseType::kStored);

  for (const std::string& key : keys) {
    Request r;
    r.command = Command::kGet;
    r.key = key;
    channel->SendNoWait(r);
  }
  ASSERT_TRUE(channel->Flush());
  std::vector<Response> got = channel->Drain();
  ASSERT_EQ(got.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(got[i].data, std::to_string(i))
        << "response order must match request order across owners";
  }
  // The burst really did exercise the mailbox path.
  TcpServerStats s = tcp_->Stats();
  EXPECT_GT(s.affinity_forwards, 0u);
  EXPECT_EQ(s.affinity_forwards + s.affinity_inline + s.affinity_fallbacks,
            s.requests);
}

TEST_F(AffinityServerTest, RawSliveredBurstWithControlCommandsStaysInOrder) {
  // The shared-mode byte-boundary test, now crossing cores: single-key sets
  // and gets (kKey, forwarded by owner) interleaved with a multi-key get
  // (kControl, forwarded to partition 0) must still come back in exactly
  // the pipelined order.
  int fd = RawConnect();
  std::string burst =
      "set a 0 0 1\r\nx\r\n"
      "set b 0 0 1\r\ny\r\n"
      "get a b\r\n"
      "get missing\r\n"
      "incr z 1\r\n";
  for (std::size_t off = 0; off < burst.size(); off += 3) {
    std::string piece = burst.substr(off, 3);
    ASSERT_EQ(::write(fd, piece.data(), piece.size()),
              static_cast<ssize_t>(piece.size()));
    if (off % 9 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::string reply = ReadUntil(fd, "NOT_FOUND\r\n");
  EXPECT_NE(reply.find("STORED\r\nSTORED\r\n"), std::string::npos);
  EXPECT_NE(reply.find("VALUE a 0 1\r\nx\r\nVALUE b 0 1\r\ny\r\nEND\r\n"),
            std::string::npos);
  EXPECT_NE(reply.find("END\r\nEND\r\nNOT_FOUND\r\n"), std::string::npos);
  ::close(fd);
}

TEST_F(AffinityServerTest, QuitAfterCrossShardBatchAnswersEverythingFirst) {
  // quit arrives pipelined behind 32 forwarded gets: the connection must
  // linger until every reserved slot completes and flushes, then FIN.
  std::vector<std::string> keys = KeysSpanningOwners(8);
  int fd = RawConnect();
  std::string burst;
  for (const std::string& key : keys) burst += "get " + key + "\r\n";
  burst += "quit\r\n";
  ASSERT_EQ(::write(fd, burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));
  std::string got;
  char buf[4096];
  while (true) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) break;  // FIN only after the whole batch
    got.append(buf, static_cast<std::size_t>(r));
  }
  std::size_t ends = 0;
  for (std::size_t pos = 0; (pos = got.find("END\r\n", pos)) != std::string::npos;
       pos += 5) {
    ++ends;
  }
  EXPECT_EQ(ends, keys.size());
  ::close(fd);
  EXPECT_TRUE(Eventually([this] { return tcp_->Stats().conn_active == 0; }));
}

TEST_F(AffinityServerTest, CrossOwnerSessionCommitReleasesAllLeases) {
  // One session quarantines keys owned by every partition, then commits on
  // its home worker: the fan-out must delete all of them and leave no lease
  // behind, regardless of which core owns which shard.
  std::vector<std::string> keys = KeysSpanningOwners(2);
  auto channel = Connect();
  RemoteCacheClient client(*channel);
  for (const std::string& key : keys) {
    ASSERT_EQ(client.Set(key, "stale"), StoreResult::kStored);
  }
  SessionId tid = client.GenID();
  for (const std::string& key : keys) {
    ASSERT_EQ(client.QaReg(tid, key), QuarantineResult::kGranted) << key;
  }
  ASSERT_TRUE(client.Commit(tid));
  for (const std::string& key : keys) {
    EXPECT_FALSE(client.Get(key).has_value()) << key << " not invalidated";
  }
  EXPECT_EQ(server_.LeaseCount(), 0u);
}

TEST_F(AffinityServerTest, ConcurrentConnectionsKeepExactCounterBalance) {
  // The shared-mode acceptance gauntlet, re-run with every command crossing
  // cores: committed increments must still land exactly once.
  {
    auto setup = Connect();
    RemoteCacheClient client(*setup);
    client.Set("n", "0");
  }
  constexpr int kThreads = 4;
  constexpr int kIncrements = 40;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &committed] {
      auto channel = Connect();
      ASSERT_NE(channel, nullptr);
      RemoteCacheClient client(*channel);
      for (int i = 0; i < kIncrements; ++i) {
        SessionId session = client.GenID();
        QaReadReply q = client.QaRead("n", session);
        if (q.status != QaReadReply::Status::kGranted) {
          client.Abort(session);
          --i;  // retry
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          continue;
        }
        std::string next = std::to_string(std::stoll(*q.value) + 1);
        client.SaR("n", std::optional<std::string>(next), q.token);
        committed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  auto channel = Connect();
  RemoteCacheClient check(*channel);
  EXPECT_EQ(check.Get("n")->value, std::to_string(committed.load()));
  EXPECT_EQ(committed.load(), kThreads * kIncrements);
  EXPECT_EQ(server_.LeaseCount(), 0u);
}

TEST_F(AffinityServerTest, StatsExposeAffinityCounters) {
  auto channel = Connect();
  RemoteCacheClient client(*channel);
  for (const std::string& key : KeysSpanningOwners(2)) client.Set(key, "v");
  std::string stats = client.Stats();
  EXPECT_NE(stats.find("STAT affinity_mode 1"), std::string::npos);
  for (const char* name : {"STAT affinity_forwards ", "STAT affinity_inline ",
                           "STAT affinity_fallbacks "}) {
    EXPECT_NE(stats.find(name), std::string::npos) << name;
  }
  TcpServerStats s = tcp_->Stats();
  EXPECT_GT(s.affinity_forwards, 0u);
  EXPECT_EQ(s.affinity_forwards + s.affinity_inline + s.affinity_fallbacks,
            s.requests);
}

TEST(AffinityDegradation, TinyMailboxStillAnswersEverythingInOrder) {
  // mailbox_capacity=1 makes most cross-core forwards bounce to the inline
  // fallback path mid-burst: correctness (order, completeness) must be
  // identical, only the execution placement degrades.
  IQServer server;
  TcpServer::Config cfg;
  cfg.workers = 4;
  cfg.affinity = true;
  cfg.mailbox_capacity = 1;
  TcpServer tcp(server, cfg);
  std::string error;
  ASSERT_TRUE(tcp.Start(&error)) << error;

  std::string perr;
  auto ch = TcpChannel::Connect("127.0.0.1", tcp.port(), &perr);
  ASSERT_NE(ch, nullptr) << perr;
  constexpr int kBatch = 200;
  for (int i = 0; i < kBatch; ++i) {
    Request r;
    r.command = Command::kSet;
    r.key = "m:" + std::to_string(i);
    r.data = std::to_string(i);
    ch->SendNoWait(r);
  }
  ASSERT_TRUE(ch->Flush());
  ASSERT_EQ(ch->Drain().size(), static_cast<std::size_t>(kBatch));
  for (int i = 0; i < kBatch; ++i) {
    Request r;
    r.command = Command::kGet;
    r.key = "m:" + std::to_string(i);
    ch->SendNoWait(r);
  }
  ASSERT_TRUE(ch->Flush());
  std::vector<Response> got = ch->Drain();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBatch));
  for (int i = 0; i < kBatch; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].data, std::to_string(i));
  }
  TcpServerStats s = tcp.Stats();
  EXPECT_EQ(s.affinity_forwards + s.affinity_inline + s.affinity_fallbacks,
            s.requests);
}

}  // namespace
}  // namespace iq::net
