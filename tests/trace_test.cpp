// Tests for the observability layer: the lease-event trace ring (including
// the drain-while-writing race the TSan job exercises), the trace emission
// sequence of IQServer, the windowed stats deltas, and the Prometheus
// exposition round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/iq_server.h"
#include "net/metrics.h"
#include "net/server.h"
#include "util/clock.h"
#include "util/trace_ring.h"

namespace iq {
namespace {

TraceEvent Ev(LeaseTraceKind kind, std::uint64_t session, Nanos at) {
  TraceEvent e;
  e.kind = kind;
  e.session = session;
  e.key_hash = TraceKeyHash("k");
  e.at = at;
  return e;
}

// ---- TraceRing ----------------------------------------------------------------

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 1u);
  EXPECT_EQ(TraceRing(2).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRingTest, DisabledRingRecordsNothing) {
  TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.Record(LeaseTraceKind::kIGrant, 0, 1, 2, 3);
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot(100).empty());
}

TEST(TraceRingTest, RecordsInOrderWithSequenceNumbers) {
  TraceRing ring(8);
  for (int i = 0; i < 5; ++i) {
    ring.Record(LeaseTraceKind::kQRefGrant, 2, 100 + i, 7, 1000 + i);
  }
  auto events = ring.Snapshot(100);
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].seq, static_cast<std::uint64_t>(i));
    EXPECT_EQ(events[i].session, 100u + i);
    EXPECT_EQ(events[i].at, 1000 + i);
    EXPECT_EQ(events[i].shard, 2u);
    EXPECT_EQ(events[i].kind, LeaseTraceKind::kQRefGrant);
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, WrapKeepsNewestEvents) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.Record(LeaseTraceKind::kCommit, 0, i, 0, 0);
  }
  auto events = ring.Snapshot(100);
  ASSERT_EQ(events.size(), 4u);
  // Sessions 6..9 survive; 0..5 were overwritten.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].session, 6 + i);
    EXPECT_EQ(events[i].seq, 6 + i);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
}

TEST(TraceRingTest, SnapshotHonorsMaxEvents) {
  TraceRing ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.Record(LeaseTraceKind::kAbort, 0, i, 0, 0);
  }
  auto events = ring.Snapshot(3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].session, 7u);  // the newest three, oldest first
  EXPECT_EQ(events[2].session, 9u);
  EXPECT_TRUE(ring.Snapshot(0).empty());
}

// The TSan target: concurrent writers racing a draining reader. Every
// accepted event must be internally consistent (our writers encode the
// session in every field, so a torn mix is detectable).
TEST(TraceRingTest, ConcurrentWritersWithDrainingReader) {
  TraceRing ring(64);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inconsistent{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceEvent& e : ring.Snapshot(64)) {
        // kind encodes session % kLeaseTraceKindCount; at encodes session.
        if (e.at != static_cast<Nanos>(e.session) ||
            static_cast<std::size_t>(e.kind) !=
                e.session % kLeaseTraceKindCount) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        std::uint64_t session = static_cast<std::uint64_t>(w) * kPerWriter + i;
        ring.Record(
            static_cast<LeaseTraceKind>(session % kLeaseTraceKindCount),
            static_cast<std::uint32_t>(w), session, session,
            static_cast<Nanos>(session));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(ring.recorded(), kWriters * kPerWriter);
  // With 4 concurrent writers on a 64-slot ring, wrapping a full capacity
  // during one writer's stores is out of reach, so no torn slot can pass
  // the double seq check.
  EXPECT_EQ(inconsistent.load(), 0u);
  auto final_events = ring.Snapshot(64);
  EXPECT_FALSE(final_events.empty());
  for (const TraceEvent& e : final_events) {
    EXPECT_EQ(e.at, static_cast<Nanos>(e.session));
  }
}

// ---- wire format round trip ---------------------------------------------------

TEST(TraceFormatTest, FormatParseRoundTrip) {
  std::vector<TraceEvent> in;
  in.push_back(Ev(LeaseTraceKind::kIGrant, 7, 111));
  in.push_back(Ev(LeaseTraceKind::kExpireDelete, 0, -5));
  in[1].shard = 3;
  in[1].seq = 42;
  std::string wire = FormatTraceEvents(in);
  std::vector<TraceEvent> out;
  ASSERT_TRUE(ParseTraceEvents(wire + "END\r\n", &out));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].kind, in[i].kind);
    EXPECT_EQ(out[i].shard, in[i].shard);
    EXPECT_EQ(out[i].session, in[i].session);
    EXPECT_EQ(out[i].key_hash, in[i].key_hash);
    EXPECT_EQ(out[i].at, in[i].at);
    EXPECT_EQ(out[i].seq, in[i].seq);
  }
}

TEST(TraceFormatTest, ParseRejectsMalformedTraceLine) {
  std::vector<TraceEvent> out;
  EXPECT_FALSE(ParseTraceEvents("TRACE 1 2 3\r\n", &out));
  EXPECT_FALSE(ParseTraceEvents("TRACE 1 2 3 nosuchkind 4 5\r\n", &out));
  out.clear();
  EXPECT_TRUE(ParseTraceEvents("END\r\n", &out));  // empty trace
  EXPECT_TRUE(out.empty());
}

TEST(TraceFormatTest, KindNamesRoundTrip) {
  for (std::size_t i = 0; i < kLeaseTraceKindCount; ++i) {
    auto kind = static_cast<LeaseTraceKind>(i);
    auto parsed = ParseLeaseTraceKind(ToString(kind));
    ASSERT_TRUE(parsed) << ToString(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseLeaseTraceKind("bogus"));
}

// ---- IQServer emission --------------------------------------------------------

class ServerTraceTest : public ::testing::Test {
 protected:
  ServerTraceTest()
      : server_(CacheStore::Config{.shard_count = 1,
                                   .memory_budget_bytes = 0,
                                   .clock = &clock_},
                Config()) {}
  IQServer::Config Config() {
    IQServer::Config cfg;
    cfg.clock = &clock_;
    cfg.trace_capacity = 64;
    return cfg;
  }
  std::vector<LeaseTraceKind> Kinds(std::size_t max = 100) {
    std::vector<LeaseTraceKind> kinds;
    for (const TraceEvent& e : server_.TraceSnapshot(max)) {
      kinds.push_back(e.kind);
    }
    return kinds;
  }
  ManualClock clock_;
  IQServer server_;
};

TEST_F(ServerTraceTest, RefreshSessionEmitsGrantAndRelease) {
  server_.store().Set("k", "old");
  clock_.Advance(1);
  QaReadReply q = server_.QaRead("k", 1);
  clock_.Advance(1);
  server_.SaR("k", "new", q.token);
  EXPECT_EQ(Kinds(), (std::vector<LeaseTraceKind>{
                         LeaseTraceKind::kQRefGrant, LeaseTraceKind::kRelease}));
}

TEST_F(ServerTraceTest, ReadMissEmitsIGrantAndInstallRelease) {
  GetReply r = server_.IQget("k", 1);
  clock_.Advance(1);
  server_.IQset("k", "v", r.token);
  EXPECT_EQ(Kinds(), (std::vector<LeaseTraceKind>{
                         LeaseTraceKind::kIGrant, LeaseTraceKind::kRelease}));
}

TEST_F(ServerTraceTest, ConflictAndPreemptionAreTraced) {
  server_.IQget("k", 1);           // i_grant
  clock_.Advance(1);
  server_.QaRead("k", 2);          // i_void + q_ref_grant
  clock_.Advance(1);
  server_.QaRead("k", 3);          // reject
  clock_.Advance(1);
  server_.Commit(2);               // commit
  EXPECT_EQ(Kinds(),
            (std::vector<LeaseTraceKind>{
                LeaseTraceKind::kIGrant, LeaseTraceKind::kIVoid,
                LeaseTraceKind::kQRefGrant, LeaseTraceKind::kReject,
                LeaseTraceKind::kCommit}));
  auto events = server_.TraceSnapshot(100);
  EXPECT_EQ(events[1].session, 1u);  // the preempted reader
  EXPECT_EQ(events[3].session, 3u);  // the rejected writer
  EXPECT_EQ(events[0].key_hash, TraceKeyHash("k"));
}

TEST_F(ServerTraceTest, ExpiryEmitsExpireDelete) {
  IQServer::Config cfg = Config();
  cfg.lease_lifetime = 1000;
  IQServer server(
      CacheStore::Config{.shard_count = 1, .memory_budget_bytes = 0,
                         .clock = &clock_},
      cfg);
  server.store().Set("k", "v");
  server.QaRead("k", 1);
  clock_.Advance(1000);
  server.SweepExpired();
  auto events = server.TraceSnapshot(100);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, LeaseTraceKind::kQRefGrant);
  EXPECT_EQ(events[1].kind, LeaseTraceKind::kExpireDelete);
  EXPECT_EQ(events[1].session, 1u);
}

TEST_F(ServerTraceTest, TracingDisabledByZeroCapacity) {
  IQServer::Config cfg = Config();
  cfg.trace_capacity = 0;
  IQServer server(CacheStore::Config{.clock = &clock_}, cfg);
  EXPECT_FALSE(server.trace_enabled());
  server.QaRead("k", 1);
  EXPECT_TRUE(server.TraceSnapshot(100).empty());
  EXPECT_EQ(server.TraceRecorded(), 0u);
}

// ---- windowed stats -----------------------------------------------------------

TEST(StatsWindowTest, DeltasAndRatesOverWindows) {
  StatsWindow window;
  IQServerStats s;
  s.commits = 10;
  StatsWindowSample first = window.Advance(s, 1 * kNanosPerSec);
  // First advance has no previous scrape: delta equals lifetime, no width.
  EXPECT_EQ(first.lifetime.commits, 10u);
  EXPECT_EQ(first.delta.commits, 10u);
  EXPECT_EQ(first.seconds, 0.0);

  s.commits = 30;
  s.q_rejected = 4;
  StatsWindowSample second = window.Advance(s, 3 * kNanosPerSec);
  EXPECT_EQ(second.lifetime.commits, 30u);
  EXPECT_EQ(second.delta.commits, 20u);
  EXPECT_EQ(second.delta.q_rejected, 4u);
  EXPECT_DOUBLE_EQ(second.seconds, 2.0);

  // No traffic: zero delta over the next window.
  StatsWindowSample third = window.Advance(s, 4 * kNanosPerSec);
  EXPECT_EQ(third.delta.commits, 0u);
  EXPECT_DOUBLE_EQ(third.seconds, 1.0);
}

TEST(StatsWindowTest, ServerWindowedStatsTracksTraffic) {
  ManualClock clock;
  IQServer::Config cfg;
  cfg.clock = &clock;
  IQServer server(CacheStore::Config{.clock = &clock}, cfg);
  server.WindowedStats();  // prime
  QaReadReply q = server.QaRead("k", 1);
  server.SaR("k", "v", q.token);
  clock.Advance(2 * kNanosPerSec);
  StatsWindowSample sample = server.WindowedStats();
  EXPECT_EQ(sample.delta.q_ref_granted, 1u);
  EXPECT_DOUBLE_EQ(sample.seconds, 2.0);
  std::string stat = net::FormatWindowedStats(sample);
  EXPECT_NE(stat.find("STAT w_q_ref_granted 1\r\n"), std::string::npos);
  EXPECT_NE(stat.find("STAT w_q_ref_granted_per_sec 0.500\r\n"),
            std::string::npos);
  EXPECT_NE(stat.find("STAT window_ms 2000\r\n"), std::string::npos);
}

// ---- Prometheus exposition ----------------------------------------------------

TEST(MetricsTest, FormatParsesBackWithRates) {
  ManualClock clock;
  IQServer::Config cfg;
  cfg.clock = &clock;
  IQServer server(CacheStore::Config{.clock = &clock}, cfg);
  server.WindowedStats();  // prime the window so the scrape carries rates
  for (int i = 0; i < 6; ++i) {
    QaReadReply q = server.QaRead("k", 1);
    server.SaR("k", "v", q.token);
    server.Commit(1);
  }
  clock.Advance(3 * kNanosPerSec);
  std::string text = net::FormatMetrics(server);
  std::map<std::string, double> series;
  ASSERT_TRUE(net::ParseMetrics(text, &series)) << text;
  EXPECT_DOUBLE_EQ(series.at("iq_q_ref_granted_total"), 6.0);
  EXPECT_DOUBLE_EQ(series.at("iq_q_ref_granted_per_sec"), 2.0);
  EXPECT_DOUBLE_EQ(series.at("iq_commits_total"), 6.0);
  EXPECT_DOUBLE_EQ(series.at("iq_window_seconds"), 3.0);
  EXPECT_DOUBLE_EQ(series.at("iq_store_item_count"), 1.0);
  EXPECT_DOUBLE_EQ(series.at("iq_leases_live"), 0.0);
  EXPECT_GT(series.at("iq_trace_recorded"), 0.0);
}

TEST(MetricsTest, FirstScrapeOmitsRates) {
  IQServer server{CacheStore::Config{}, IQServer::Config{}};
  std::string text = net::FormatMetrics(server);
  std::map<std::string, double> series;
  ASSERT_TRUE(net::ParseMetrics(text, &series));
  EXPECT_TRUE(series.count("iq_commits_total"));
  EXPECT_FALSE(series.count("iq_commits_per_sec"));
  EXPECT_DOUBLE_EQ(series.at("iq_window_seconds"), 0.0);
}

TEST(MetricsTest, StatLinesRenderAsGauges) {
  std::string out;
  net::AppendStatsAsMetrics(
      "STAT conn_active 3\r\nSTAT version whatever\r\nSTAT bytes_read 99\r\n",
      &out);
  std::map<std::string, double> series;
  ASSERT_TRUE(net::ParseMetrics(out, &series));
  EXPECT_DOUBLE_EQ(series.at("iq_conn_active"), 3.0);
  EXPECT_DOUBLE_EQ(series.at("iq_bytes_read"), 99.0);
  EXPECT_FALSE(series.count("iq_version"));  // non-numeric skipped
}

TEST(MetricsTest, ParseRejectsMalformedSample) {
  std::map<std::string, double> series;
  EXPECT_FALSE(net::ParseMetrics("iq_thing notanumber\n", &series));
  EXPECT_TRUE(net::ParseMetrics("# just a comment\n\n", &series));
}

}  // namespace
}  // namespace iq
