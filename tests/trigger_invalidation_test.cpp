#include <gtest/gtest.h>

#include <thread>

#include "core/iq_server.h"
#include "casql/trigger_invalidation.h"
#include "rdbms/sql.h"
#include "util/worker_group.h"

namespace iq::casql {
namespace {

using sql::DmlOp;
using sql::SchemaBuilder;
using sql::TriggerEvent;
using sql::V;

class TriggerInvalidationTest : public ::testing::Test {
 protected:
  TriggerInvalidationTest() : invalidator_(db_, server_) {
    db_.CreateTable(SchemaBuilder("Users")
                        .AddInt("id")
                        .AddInt("score")
                        .PrimaryKey({"id"})
                        .Build());
    auto txn = db_.Begin();
    txn->Insert("Users", {V(1), V(10)});
    txn->Insert("Users", {V(2), V(20)});
    txn->Commit();
    invalidator_.Register("Users", DmlOp::kUpdate, ProfileMapper());
    invalidator_.Register("Users", DmlOp::kDelete, ProfileMapper());
    invalidator_.Register("Users", DmlOp::kInsert, ProfileMapper());
  }

  static KeyMapper ProfileMapper() {
    return [](const TriggerEvent& e) {
      const sql::Row* row = e.new_row != nullptr ? e.new_row : e.old_row;
      return std::vector<std::string>{
          "Profile:" + std::to_string(*sql::AsInt((*row)[0]))};
    };
  }

  static std::string Key(int id) { return "Profile:" + std::to_string(id); }

  sql::Database db_;
  IQServer server_;
  TriggerInvalidator invalidator_;
};

TEST_F(TriggerInvalidationTest, CommitDeletesImpactedKeys) {
  server_.store().Set(Key(1), "cached");
  auto session = invalidator_.BeginSession();
  sql::Query(session->txn(), "UPDATE Users SET score = score + 1 WHERE id = 1");
  // Deferred delete: the old value is still visible mid-session.
  EXPECT_TRUE(server_.store().Get(Key(1)));
  EXPECT_TRUE(session->Commit());
  EXPECT_FALSE(server_.store().Get(Key(1)));
}

TEST_F(TriggerInvalidationTest, UncoveredKeysUntouched) {
  server_.store().Set(Key(2), "other");
  auto session = invalidator_.BeginSession();
  sql::Query(session->txn(), "UPDATE Users SET score = 0 WHERE id = 1");
  session->Commit();
  EXPECT_TRUE(server_.store().Get(Key(2)));
}

TEST_F(TriggerInvalidationTest, AbortLeavesValues) {
  server_.store().Set(Key(1), "cached");
  auto session = invalidator_.BeginSession();
  sql::Query(session->txn(), "UPDATE Users SET score = 0 WHERE id = 1");
  session->Abort();
  EXPECT_EQ(server_.store().Get(Key(1))->value, "cached");
  EXPECT_FALSE(server_.LeaseOn(Key(1)));
  // The rollback really happened.
  auto txn = db_.Begin();
  EXPECT_EQ(*sql::AsInt((*txn->SelectByPk("Users", {V(1)}))[1]), 10);
}

TEST_F(TriggerInvalidationTest, DestructionActsAsAbort) {
  server_.store().Set(Key(1), "cached");
  {
    auto session = invalidator_.BeginSession();
    sql::Query(session->txn(), "UPDATE Users SET score = 0 WHERE id = 1");
  }
  EXPECT_EQ(server_.store().Get(Key(1))->value, "cached");
  EXPECT_FALSE(server_.LeaseOn(Key(1)));
}

TEST_F(TriggerInvalidationTest, QuarantineVoidsRacingReaderLease) {
  // The Figure 3 race, trigger-style, now prevented: a reader that took an
  // I lease before the trigger fired cannot install its stale value.
  GetReply reader = server_.IQget(Key(1), 999);
  ASSERT_EQ(reader.status, GetReply::Status::kMissGrantedI);
  auto session = invalidator_.BeginSession();
  sql::Query(session->txn(), "UPDATE Users SET score = 99 WHERE id = 1");
  // Reader computed "score=10" from a pre-commit snapshot; its install is
  // dropped because the trigger's QaReg voided the I lease.
  EXPECT_EQ(server_.IQset(Key(1), "score=10", reader.token),
            StoreResult::kNotStored);
  session->Commit();
  EXPECT_FALSE(server_.store().Get(Key(1)));
}

TEST_F(TriggerInvalidationTest, MultiRowDmlQuarantinesEachRow) {
  server_.store().Set(Key(1), "a");
  server_.store().Set(Key(2), "b");
  auto session = invalidator_.BeginSession();
  sql::Query(session->txn(), "UPDATE Users SET score = 0 WHERE score > 0");
  session->Commit();
  EXPECT_FALSE(server_.store().Get(Key(1)));
  EXPECT_FALSE(server_.store().Get(Key(2)));
}

TEST_F(TriggerInvalidationTest, InsertAndDeleteCovered) {
  server_.store().Set(Key(3), "phantom");
  auto session = invalidator_.BeginSession();
  sql::Query(session->txn(), "INSERT INTO Users VALUES (3, 30)");
  session->Commit();
  EXPECT_FALSE(server_.store().Get(Key(3)));

  server_.store().Set(Key(3), "cached");
  auto session2 = invalidator_.BeginSession();
  sql::Query(session2->txn(), "DELETE FROM Users WHERE id = 3");
  session2->Commit();
  EXPECT_FALSE(server_.store().Get(Key(3)));
}

TEST_F(TriggerInvalidationTest, DmlOutsideManagedSessionSkipsQuarantine) {
  server_.store().Set(Key(1), "cached");
  auto txn = db_.Begin();
  sql::Query(*txn, "UPDATE Users SET score = 5 WHERE id = 1");
  txn->Commit();
  // No managed session: the trigger had nothing to attach to.
  EXPECT_TRUE(server_.store().Get(Key(1)));
  EXPECT_FALSE(server_.LeaseOn(Key(1)));
}

TEST_F(TriggerInvalidationTest, ActiveTidScopedToSession) {
  EXPECT_EQ(TriggerInvalidator::ActiveTid(), 0u);
  {
    auto session = invalidator_.BeginSession();
    EXPECT_NE(TriggerInvalidator::ActiveTid(), 0u);
    session->Commit();
    EXPECT_EQ(TriggerInvalidator::ActiveTid(), 0u);
  }
}

TEST_F(TriggerInvalidationTest, ActiveTidIsPerThread) {
  auto session = invalidator_.BeginSession();
  SessionId here = TriggerInvalidator::ActiveTid();
  EXPECT_NE(here, 0u);
  SessionId elsewhere = 1;
  std::thread other([&] { elsewhere = TriggerInvalidator::ActiveTid(); });
  other.join();
  EXPECT_EQ(elsewhere, 0u);
  session->Abort();
}

TEST_F(TriggerInvalidationTest, ConcurrentManagedSessionsStayConsistent) {
  // Writers bump scores through managed sessions; readers read through the
  // cache with I leases. The cache must always converge to the database.
  auto compute = [&](int id) {
    auto txn = db_.Begin();
    auto row = txn->SelectByPk("Users", {V(id)});
    return std::to_string(*sql::AsInt((*row)[1]));
  };
  WorkerGroup group;
  group.Start(4, [&](int worker, const std::atomic<bool>&) {
    if (worker < 2) {
      for (int i = 0; i < 50; ++i) {
        auto session = invalidator_.BeginSession();
        auto r = sql::Query(session->txn(),
                            "UPDATE Users SET score = score + 1 WHERE id = 1");
        if (r.ok()) {
          session->Commit();
        } else {
          session->Abort();
        }
      }
    } else {
      for (int i = 0; i < 100; ++i) {
        GetReply r = server_.IQget(Key(1), 5000 + static_cast<SessionId>(worker));
        if (r.status == GetReply::Status::kMissGrantedI) {
          server_.IQset(Key(1), compute(1), r.token);
        }
      }
    }
  });
  group.StopAndJoin();
  // Converged: a fresh read-through returns the final database value.
  auto final_txn = db_.Begin();
  std::string db_value =
      std::to_string(*sql::AsInt((*final_txn->SelectByPk("Users", {V(1)}))[1]));
  auto cached = server_.store().Get(Key(1));
  if (cached) EXPECT_EQ(cached->value, db_value);
}

}  // namespace
}  // namespace iq::casql
