#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>

#include "util/backoff.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/worker_group.h"

namespace iq {
namespace {

// ---- clock -------------------------------------------------------------------

TEST(ManualClock, StartsAtConfiguredTime) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
}

TEST(ManualClock, AdvanceAccumulates) {
  ManualClock clock;
  clock.Advance(5);
  clock.Advance(7);
  EXPECT_EQ(clock.Now(), 12);
}

TEST(ManualClock, SetOverrides) {
  ManualClock clock(50);
  clock.Set(10);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(SteadyClock, IsMonotonic) {
  SteadyClock& clock = SteadyClock::Instance();
  Nanos a = clock.Now();
  Nanos b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(Stopwatch, MeasuresManualAdvance) {
  ManualClock clock;
  Stopwatch sw(clock);
  clock.Advance(3 * kNanosPerMilli);
  EXPECT_EQ(sw.ElapsedNanos(), 3 * kNanosPerMilli);
  EXPECT_DOUBLE_EQ(sw.ElapsedMillis(), 3.0);
  sw.Restart();
  EXPECT_EQ(sw.ElapsedNanos(), 0);
}

// ---- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedValuesStayInRange) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(Rng, NextIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng forked = a.Fork();
  // The fork should not replay the parent's sequence.
  Rng b(42);
  b.Next();  // parent consumed one value to fork
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (forked.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(77);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Zipfian, UniformWhenThetaZero) {
  ZipfianGenerator zipf(10, 0.0);
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next(rng)];
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(c / 100000.0, 0.1, 0.02) << "item " << k;
  }
}

TEST(Zipfian, SkewConcentratesOnLowIds) {
  ZipfianGenerator zipf(1000, 0.99);
  Rng rng(2);
  int in_top_ten = 0;
  for (int i = 0; i < 100000; ++i) {
    if (zipf.Next(rng) < 10) ++in_top_ten;
  }
  // Heavy skew: the hottest 1% of items draw a large share.
  EXPECT_GT(in_top_ten, 30000);
}

TEST(Zipfian, Theta027MatchesBgSeventyTwenty) {
  // The paper's workload: theta=0.27 makes ~70% of requests reference ~20%
  // of the data (Section 6.2 / BG TR 2013-02). BG's theta is the complement
  // of the Zipf exponent: exponent = 1 - 0.27 = 0.73.
  ZipfianGenerator zipf(10000, 1.0 - 0.27);
  Rng rng(3);
  int in_top_fifth = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next(rng) < 2000) ++in_top_fifth;
  }
  double share = static_cast<double>(in_top_fifth) / kDraws;
  EXPECT_GT(share, 0.55);
  EXPECT_LT(share, 0.85);
}

TEST(Zipfian, AllDrawsInRange) {
  ZipfianGenerator zipf(100, 0.5);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(rng), 100u);
}

TEST(ScrambledZipfian, SpreadsHotItems) {
  ScrambledZipfian zipf(1000, 0.99);
  Rng rng(5);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next(rng)];
  // The two hottest items should not be adjacent ids (scrambling).
  std::uint64_t hottest = 0, second = 0;
  int c1 = 0, c2 = 0;
  for (const auto& [k, c] : counts) {
    if (c > c1) {
      second = hottest;
      c2 = c1;
      hottest = k;
      c1 = c;
    } else if (c > c2) {
      second = k;
      c2 = c;
    }
  }
  EXPECT_GT(c1, 100);
  EXPECT_NE(hottest + 1, second);
}

// ---- histogram ----------------------------------------------------------------

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(100), 1.0);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 1000);
  EXPECT_EQ(h.Max(), 1000);
  // ~1% relative error from bucketing.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 1000, 40);
}

TEST(LatencyHistogram, PercentilesOfUniformRamp) {
  LatencyHistogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(i * 1000);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.50)), 5.0e6, 2e5);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.95)), 9.5e6, 4e5);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 9.9e6, 4e5);
  EXPECT_NEAR(h.MeanNanos(), 5.0005e6, 1e3);
}

TEST(LatencyHistogram, FractionBelowThreshold) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * kNanosPerMilli);
  double frac = h.FractionBelow(100 * kNanosPerMilli);
  EXPECT_NEAR(frac, 0.1, 0.02);
}

TEST(LatencyHistogram, MergeCombinesCounts) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(1000);
  for (int i = 0; i < 100; ++i) b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200u);
  EXPECT_EQ(a.Min(), 1000);
  EXPECT_GE(a.Max(), 1000000);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.Record(123456);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0);
}

TEST(LatencyHistogram, NegativeValuesClampToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 0);
}

TEST(LatencyHistogram, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.Record(kNanosPerMilli);
  std::string s = h.Summary();
  EXPECT_NE(s.find("p95"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

// ---- backoff -------------------------------------------------------------------

TEST(ExponentialBackoff, GrowsWithAttempts) {
  ExponentialBackoff policy(1000, 1000000);
  Rng rng(1);
  Nanos early = policy.DelayFor(0, rng);
  Nanos late = policy.DelayFor(8, rng);
  EXPECT_GT(late, early);
}

TEST(ExponentialBackoff, RespectsCap) {
  ExponentialBackoff policy(1000, 16000);
  Rng rng(2);
  for (int attempt = 0; attempt < 60; ++attempt) {
    // Jitter adds at most 50%.
    EXPECT_LE(policy.DelayFor(attempt, rng), 16000 * 3 / 2);
  }
}

TEST(ExponentialBackoff, JitterVaries) {
  ExponentialBackoff policy(1 << 20, 1 << 30);
  Rng rng(3);
  Nanos a = policy.DelayFor(4, rng);
  Nanos b = policy.DelayFor(4, rng);
  Nanos c = policy.DelayFor(4, rng);
  EXPECT_TRUE(a != b || b != c);
}

TEST(FixedBackoff, ConstantRegardlessOfAttempt) {
  FixedBackoff policy(5000);
  Rng rng(4);
  EXPECT_EQ(policy.DelayFor(0, rng), 5000);
  EXPECT_EQ(policy.DelayFor(50, rng), 5000);
}

TEST(SleepFor, WaitsAtLeastDuration) {
  SteadyClock& clock = SteadyClock::Instance();
  Nanos t0 = clock.Now();
  SleepFor(clock, kNanosPerMilli);
  EXPECT_GE(clock.Now() - t0, kNanosPerMilli);
}

// ---- worker group ---------------------------------------------------------------

TEST(WorkerGroup, AllWorkersRun) {
  std::atomic<int> ran{0};
  WorkerGroup group;
  group.Start(8, [&](int, const std::atomic<bool>&) { ran.fetch_add(1); });
  group.StopAndJoin();
  EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerGroup, StopFlagTerminatesLoops) {
  std::atomic<std::uint64_t> iterations{0};
  WorkerGroup::RunFor(4, 20 * kNanosPerMilli, SteadyClock::Instance(),
                      [&](int, const std::atomic<bool>& stop) {
                        while (!stop.load()) iterations.fetch_add(1);
                      });
  EXPECT_GT(iterations.load(), 0u);
}

TEST(WorkerGroup, WorkerIdsAreDistinct) {
  std::atomic<int> mask{0};
  WorkerGroup group;
  group.Start(4, [&](int id, const std::atomic<bool>&) {
    mask.fetch_or(1 << id);
  });
  group.StopAndJoin();
  EXPECT_EQ(mask.load(), 0b1111);
}

}  // namespace
}  // namespace iq
