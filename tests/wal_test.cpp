#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>

#include "rdbms/sql.h"
#include "util/rng.h"
#include "rdbms/wal.h"

namespace iq::sql {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() {
    path_ = ::testing::TempDir() + "wal_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  ~WalTest() override { std::remove(path_.c_str()); }

  static void CreateSchema(Database& db) {
    db.CreateTable(SchemaBuilder("T")
                       .AddInt("id")
                       .AddText("v")
                       .AddInt("n")
                       .PrimaryKey({"id"})
                       .Build());
  }

  std::string path_;
};

// ---- record codec -------------------------------------------------------------

TEST_F(WalTest, RecordRoundTrips) {
  std::vector<RedoOp> ops;
  ops.push_back({RedoOp::Kind::kPut, "T", {V(1), V("hello"), V(5)}});
  ops.push_back({RedoOp::Kind::kDelete, "T", {V(2)}});
  std::string record = WriteAheadLog::EncodeRecord(42, ops);
  std::size_t pos = 0;
  Timestamp ts = 0;
  std::vector<RedoOp> decoded;
  ASSERT_TRUE(WriteAheadLog::DecodeRecord(record, &pos, &ts, &decoded));
  EXPECT_EQ(pos, record.size());
  EXPECT_EQ(ts, 42u);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].kind, RedoOp::Kind::kPut);
  EXPECT_EQ(decoded[0].row, (Row{V(1), V("hello"), V(5)}));
  EXPECT_EQ(decoded[1].kind, RedoOp::Kind::kDelete);
}

TEST_F(WalTest, RecordSurvivesHostileBytes) {
  std::vector<RedoOp> ops;
  ops.push_back({RedoOp::Kind::kPut, "T", {V(1), V("a\nb;COMMIT\nTXN 9 "), V()}});
  std::string record = WriteAheadLog::EncodeRecord(7, ops);
  std::size_t pos = 0;
  Timestamp ts = 0;
  std::vector<RedoOp> decoded;
  ASSERT_TRUE(WriteAheadLog::DecodeRecord(record, &pos, &ts, &decoded));
  EXPECT_EQ(decoded[0].row[1], V("a\nb;COMMIT\nTXN 9 "));
  EXPECT_TRUE(IsNull(decoded[0].row[2]));
}

TEST_F(WalTest, TornRecordRejectedWithoutAdvancing) {
  std::vector<RedoOp> ops;
  ops.push_back({RedoOp::Kind::kPut, "T", {V(1), V("x"), V(0)}});
  std::string record = WriteAheadLog::EncodeRecord(1, ops);
  for (std::size_t cut = 1; cut < record.size(); ++cut) {
    std::string torn = record.substr(0, cut);
    std::size_t pos = 0;
    Timestamp ts = 0;
    std::vector<RedoOp> decoded;
    EXPECT_FALSE(WriteAheadLog::DecodeRecord(torn, &pos, &ts, &decoded))
        << "cut at " << cut;
    EXPECT_EQ(pos, 0u);
  }
}

// ---- end-to-end durability -------------------------------------------------------

TEST_F(WalTest, CommitsReplayIntoFreshDatabase) {
  {
    WriteAheadLog wal(path_);
    Database::Config cfg;
    cfg.wal = &wal;
    Database db(cfg);
    CreateSchema(db);
    auto t1 = db.Begin();
    t1->Insert("T", {V(1), V("one"), V(10)});
    t1->Insert("T", {V(2), V("two"), V(20)});
    ASSERT_EQ(t1->Commit(), TxnResult::kOk);
    auto t2 = db.Begin();
    t2->UpdateByPk("T", {V(1)}, {{"n", V(11)}});
    t2->DeleteByPk("T", {V(2)});
    ASSERT_EQ(t2->Commit(), TxnResult::kOk);
    EXPECT_EQ(wal.records_written(), 2u);
  }  // "crash": the database object dies; only the log survives

  Database recovered;
  CreateSchema(recovered);
  EXPECT_EQ(WriteAheadLog::Replay(path_, recovered), 2u);
  auto txn = recovered.Begin();
  auto row1 = txn->SelectByPk("T", {V(1)});
  ASSERT_TRUE(row1);
  EXPECT_EQ((*row1)[1], V("one"));
  EXPECT_EQ((*row1)[2], V(11));
  EXPECT_FALSE(txn->SelectByPk("T", {V(2)}));
}

TEST_F(WalTest, AbortedTransactionsLeaveNoRecord) {
  WriteAheadLog wal(path_);
  Database::Config cfg;
  cfg.wal = &wal;
  Database db(cfg);
  CreateSchema(db);
  auto txn = db.Begin();
  txn->Insert("T", {V(1), V("x"), V(0)});
  txn->Rollback();
  EXPECT_EQ(wal.records_written(), 0u);
  Database recovered;
  CreateSchema(recovered);
  EXPECT_EQ(WriteAheadLog::Replay(path_, recovered), 0u);
}

TEST_F(WalTest, ReadOnlyCommitsLogNothing) {
  WriteAheadLog wal(path_);
  Database::Config cfg;
  cfg.wal = &wal;
  Database db(cfg);
  CreateSchema(db);
  auto txn = db.Begin();
  txn->SelectAll("T");
  txn->Commit();
  EXPECT_EQ(wal.records_written(), 0u);
}

TEST_F(WalTest, TornTailIsDiscardedOnReplay) {
  {
    WriteAheadLog wal(path_);
    Database::Config cfg;
    cfg.wal = &wal;
    Database db(cfg);
    CreateSchema(db);
    for (int i = 0; i < 3; ++i) {
      auto txn = db.Begin();
      txn->Insert("T", {V(i), V("v"), V(i)});
      txn->Commit();
    }
  }
  // Crash mid-write: chop bytes off the tail.
  {
    std::ifstream in(path_, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() - 9));
  }
  Database recovered;
  CreateSchema(recovered);
  EXPECT_EQ(WriteAheadLog::Replay(path_, recovered), 2u);  // third txn torn
  auto txn = recovered.Begin();
  EXPECT_TRUE(txn->SelectByPk("T", {V(0)}));
  EXPECT_TRUE(txn->SelectByPk("T", {V(1)}));
  EXPECT_FALSE(txn->SelectByPk("T", {V(2)}));
}

TEST_F(WalTest, ConcurrentCommitsAllRecoverable) {
  constexpr int kThreads = 4;
  constexpr int kRowsEach = 30;
  {
    WriteAheadLog wal(path_);
    Database::Config cfg;
    cfg.wal = &wal;
    Database db(cfg);
    CreateSchema(db);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&db, t] {
        for (int i = 0; i < kRowsEach; ++i) {
          auto txn = db.Begin();
          txn->Insert("T", {V(t * 1000 + i), V("w"), V(t)});
          txn->Commit();
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(wal.records_written(),
              static_cast<std::uint64_t>(kThreads) * kRowsEach);
  }
  Database recovered;
  CreateSchema(recovered);
  EXPECT_EQ(WriteAheadLog::Replay(path_, recovered),
            static_cast<std::size_t>(kThreads) * kRowsEach);
  auto txn = recovered.Begin();
  EXPECT_EQ(txn->SelectAll("T").size(),
            static_cast<std::size_t>(kThreads) * kRowsEach);
}

TEST_F(WalTest, RecoveredStateMatchesLiveStateExactly) {
  Row live_row;
  {
    WriteAheadLog wal(path_);
    Database::Config cfg;
    cfg.wal = &wal;
    Database db(cfg);
    CreateSchema(db);
    // A little history: inserts, updates, deletes, re-insert.
    iq::Rng rng(99);
    for (int i = 0; i < 50; ++i) {
      auto txn = db.Begin();
      auto id = static_cast<std::int64_t>(rng.NextUint64(10));
      if (txn->SelectByPk("T", {V(id)})) {
        if (rng.NextBool(0.3)) {
          txn->DeleteByPk("T", {V(id)});
        } else {
          txn->UpdateByPk("T", {V(id)}, [&](Row& row) {
            row[2] = V(*AsInt(row[2]) + 1);
          });
        }
      } else {
        txn->Insert("T", {V(id), V("r" + std::to_string(i)), V(0)});
      }
      txn->Commit();
    }
    auto txn = db.Begin();
    auto rows = txn->SelectAll("T");
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return *AsInt(a[0]) < *AsInt(b[0]);
    });
    live_row = rows.empty() ? Row{} : rows[0];

    Database recovered;
    CreateSchema(recovered);
    WriteAheadLog::Replay(path_, recovered);
    auto rtxn = recovered.Begin();
    auto rrows = rtxn->SelectAll("T");
    std::sort(rrows.begin(), rrows.end(), [](const Row& a, const Row& b) {
      return *AsInt(a[0]) < *AsInt(b[0]);
    });
    EXPECT_EQ(rows, rrows);
  }
}

}  // namespace
}  // namespace iq::sql
