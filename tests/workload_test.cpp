#include "core/iq_server.h"
#include <gtest/gtest.h>

#include "bg/workload.h"

namespace iq::bg {
namespace {

class WorkloadHelperTest : public ::testing::Test {
 protected:
  WorkloadHelperTest() : graph_{30, 4, 1, 1} {
    CreateBgTables(db_);
    LoadGraph(db_, graph_);
    pools_.SeedFromGraph(graph_);
    cfg_.technique = casql::Technique::kRefresh;
    cfg_.consistency = casql::Consistency::kIQ;
  }

  GraphConfig graph_;
  sql::Database db_;
  IQServer server_;
  ActionPools pools_;
  casql::CasqlConfig cfg_;
};

TEST_F(WorkloadHelperTest, WarmCachePopulatesEveryMemberKey) {
  casql::CasqlSystem system(db_, server_, cfg_);
  WarmCache(system, graph_);
  for (MemberId id = 0; id < graph_.members; ++id) {
    EXPECT_TRUE(server_.store().Get(ProfileKey(id))) << id;
    EXPECT_TRUE(server_.store().Get(FriendsKey(id))) << id;
    EXPECT_TRUE(server_.store().Get(PendingKey(id))) << id;
  }
  // No leases left dangling by the warm-up pass.
  EXPECT_EQ(server_.LeaseCount(), 0u);
}

TEST_F(WorkloadHelperTest, SeedValidatorFromDbMatchesLoaderFormula) {
  // On a pristine graph, DB-snapshot seeding must agree with the loader's
  // closed-form initial state: identical validation outcomes.
  casql::CasqlSystem system(db_, server_, cfg_);
  for (bool from_db : {false, true}) {
    WorkloadConfig wl;
    wl.mix = HighWriteMix();
    wl.threads = 2;
    wl.duration = 60 * kNanosPerMilli;
    wl.seed = 5;
    wl.seed_validator_from_db = from_db;
    IQServer fresh_server;
    sql::Database fresh_db;
    CreateBgTables(fresh_db);
    LoadGraph(fresh_db, graph_);
    ActionPools fresh_pools;
    fresh_pools.SeedFromGraph(graph_);
    casql::CasqlSystem fresh_system(fresh_db, fresh_server, cfg_);
    auto result = RunWorkload(fresh_system, fresh_pools, graph_, wl);
    EXPECT_EQ(result.validation.unpredictable, 0u)
        << "seed_from_db=" << from_db;
    EXPECT_GT(result.validation.reads_checked, 0u);
  }
}

TEST_F(WorkloadHelperTest, SeedValidatorFromDbTracksMutations) {
  // Mutate the graph, then seed from the DB: a run on the mutated graph
  // must still validate clean (a formula-based seeding would flag every
  // read of the mutated member as stale).
  casql::CasqlSystem system(db_, server_, cfg_);
  {
    auto txn = db_.Begin();
    txn->UpdateByPk("Users", {sql::V(3)}, {{"pendingCount", sql::V(5)}});
    txn->Commit();
  }
  Validator validator;
  SeedValidatorFromDb(validator, db_, graph_);
  ThreadLog log;
  log.LogCounterRead("pc:3", 1, 2, 5);  // the mutated value
  validator.Absorb(std::move(log));
  EXPECT_EQ(validator.Validate().unpredictable, 0u);

  Validator formula_validator;
  SeedValidator(formula_validator, graph_);
  ThreadLog log2;
  log2.LogCounterRead("pc:3", 1, 2, 5);  // formula says pc=0: flagged
  formula_validator.Absorb(std::move(log2));
  EXPECT_EQ(formula_validator.Validate().unpredictable, 1u);
}

TEST_F(WorkloadHelperTest, ResultAccountingIsConsistent) {
  casql::CasqlSystem system(db_, server_, cfg_);
  WorkloadConfig wl;
  wl.mix = VeryLowWriteMix();
  wl.threads = 3;
  wl.duration = 80 * kNanosPerMilli;
  auto result = RunWorkload(system, pools_, graph_, wl);
  EXPECT_GT(result.actions, 0u);
  EXPECT_LE(result.failed_actions, result.actions);
  EXPECT_EQ(result.latency.Count(), result.actions);
  EXPECT_GT(result.elapsed, 0);
  EXPECT_GT(result.Throughput(), 0.0);
}

}  // namespace
}  // namespace iq::bg
