// iqbench: command-line driver for the BG workload over any client design.
//
//   iqbench [--technique=invalidate|refresh|incremental]
//           [--consistency=none|cas|read-lease|iq]
//           [--placement=prior|inside]
//           [--members=N] [--friends=N] [--threads=N] [--seconds=S]
//           [--mix=0.1|1|10] [--seed=N] [--warm] [--no-validate]
//           [--db-read-us=N] [--db-write-us=N] [--db-commit-us=N]
//           [--lease-ms=N] [--eager-delete]
//
// Prints a one-screen report: throughput, latency percentiles, restart
// statistics, unpredictable-read percentage, and cache-server counters.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/iq_server.h"
#include "bg/workload.h"
#include "casql/casql.h"
#include "net/server.h"

using namespace iq;

namespace {

struct Options {
  casql::Technique technique = casql::Technique::kRefresh;
  casql::Consistency consistency = casql::Consistency::kIQ;
  casql::LeasePlacement placement = casql::LeasePlacement::kInsideTxn;
  bg::MemberId members = 1000;
  int friends = 10;
  int threads = 16;
  double seconds = 3.0;
  double mix = 1.0;
  std::uint64_t seed = 42;
  bool warm = false;
  bool validate = true;
  Nanos db_read = 30 * kNanosPerMicro;
  Nanos db_write = 60 * kNanosPerMicro;
  Nanos db_commit = 60 * kNanosPerMicro;
  Nanos lease_lifetime = 10 * kNanosPerSec;
  bool deferred_delete = true;
};

bool StartsWith(const char* arg, const char* prefix, const char** value) {
  std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *value = arg + n;
  return true;
}

[[noreturn]] void Usage(const char* bad) {
  std::fprintf(stderr, "iqbench: bad argument '%s'\n", bad);
  std::fprintf(stderr,
               "usage: iqbench [--technique=invalidate|refresh|incremental]\n"
               "               [--consistency=none|cas|read-lease|iq]\n"
               "               [--placement=prior|inside] [--members=N]\n"
               "               [--friends=N] [--threads=N] [--seconds=S]\n"
               "               [--mix=0.1|1|10] [--seed=N] [--warm]\n"
               "               [--no-validate] [--db-read-us=N]\n"
               "               [--db-write-us=N] [--db-commit-us=N]\n"
               "               [--lease-ms=N] [--eager-delete]\n");
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    const char* arg = argv[i];
    if (StartsWith(arg, "--technique=", &v)) {
      if (std::strcmp(v, "invalidate") == 0) {
        opt.technique = casql::Technique::kInvalidate;
      } else if (std::strcmp(v, "refresh") == 0) {
        opt.technique = casql::Technique::kRefresh;
      } else if (std::strcmp(v, "incremental") == 0) {
        opt.technique = casql::Technique::kIncremental;
      } else {
        Usage(arg);
      }
    } else if (StartsWith(arg, "--consistency=", &v)) {
      if (std::strcmp(v, "none") == 0) {
        opt.consistency = casql::Consistency::kNone;
      } else if (std::strcmp(v, "cas") == 0) {
        opt.consistency = casql::Consistency::kCas;
      } else if (std::strcmp(v, "read-lease") == 0) {
        opt.consistency = casql::Consistency::kReadLease;
      } else if (std::strcmp(v, "iq") == 0) {
        opt.consistency = casql::Consistency::kIQ;
      } else {
        Usage(arg);
      }
    } else if (StartsWith(arg, "--placement=", &v)) {
      if (std::strcmp(v, "prior") == 0) {
        opt.placement = casql::LeasePlacement::kPriorToTxn;
      } else if (std::strcmp(v, "inside") == 0) {
        opt.placement = casql::LeasePlacement::kInsideTxn;
      } else {
        Usage(arg);
      }
    } else if (StartsWith(arg, "--members=", &v)) {
      opt.members = std::atoll(v);
    } else if (StartsWith(arg, "--friends=", &v)) {
      opt.friends = std::atoi(v);
    } else if (StartsWith(arg, "--threads=", &v)) {
      opt.threads = std::atoi(v);
    } else if (StartsWith(arg, "--seconds=", &v)) {
      opt.seconds = std::atof(v);
    } else if (StartsWith(arg, "--mix=", &v)) {
      opt.mix = std::atof(v);
    } else if (StartsWith(arg, "--seed=", &v)) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (std::strcmp(arg, "--warm") == 0) {
      opt.warm = true;
    } else if (std::strcmp(arg, "--no-validate") == 0) {
      opt.validate = false;
    } else if (StartsWith(arg, "--db-read-us=", &v)) {
      opt.db_read = std::atoll(v) * kNanosPerMicro;
    } else if (StartsWith(arg, "--db-write-us=", &v)) {
      opt.db_write = std::atoll(v) * kNanosPerMicro;
    } else if (StartsWith(arg, "--db-commit-us=", &v)) {
      opt.db_commit = std::atoll(v) * kNanosPerMicro;
    } else if (StartsWith(arg, "--lease-ms=", &v)) {
      opt.lease_lifetime = std::atoll(v) * kNanosPerMilli;
    } else if (std::strcmp(arg, "--eager-delete") == 0) {
      opt.deferred_delete = false;
    } else {
      Usage(arg);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Parse(argc, argv);

  std::printf("iqbench: %s / %s / %s | %lld members, %d threads, %.1fs, %.1f%% writes\n",
              casql::ToString(opt.technique), casql::ToString(opt.consistency),
              casql::ToString(opt.placement),
              static_cast<long long>(opt.members), opt.threads, opt.seconds,
              opt.mix);

  sql::Database::Config db_cfg;
  db_cfg.read_delay = opt.db_read;
  db_cfg.write_delay = opt.db_write;
  db_cfg.commit_delay = opt.db_commit;
  sql::Database db(db_cfg);

  bg::GraphConfig graph;
  graph.members = opt.members;
  graph.friends_per_member = opt.friends;
  graph.resources_per_member = 2;
  graph.comments_per_resource = 2;

  std::printf("loading social graph...\n");
  bg::CreateBgTables(db);
  std::size_t rows = bg::LoadGraph(db, graph);
  std::printf("  %zu rows loaded\n", rows);
  bg::ActionPools pools;
  pools.SeedFromGraph(graph);

  IQServer::Config server_cfg;
  server_cfg.lease_lifetime = opt.lease_lifetime;
  server_cfg.deferred_delete = opt.deferred_delete;
  IQServer server(CacheStore::Config{}, server_cfg);

  casql::CasqlConfig cfg;
  cfg.technique = opt.technique;
  cfg.consistency = opt.consistency;
  cfg.placement = opt.placement;
  casql::CasqlSystem system(db, server, cfg);

  if (opt.warm) {
    std::printf("warming the cache...\n");
    bg::WarmCache(system, graph);
  }

  bg::WorkloadConfig wl;
  wl.mix = bg::MixForWritePercent(opt.mix);
  wl.threads = opt.threads;
  wl.duration = static_cast<Nanos>(opt.seconds * kNanosPerSec);
  wl.seed = opt.seed;
  wl.validate = opt.validate;
  wl.seed_validator_from_db = true;

  std::printf("running...\n\n");
  bg::WorkloadResult result = bg::RunWorkload(system, pools, graph, wl);

  std::printf("throughput     %12.0f actions/sec (%llu actions, %llu no-ops)\n",
              result.Throughput(),
              static_cast<unsigned long long>(result.actions),
              static_cast<unsigned long long>(result.failed_actions));
  std::printf("latency        %s\n", result.latency.Summary().c_str());
  std::printf("SLA (95%%<100ms) %s\n",
              result.latency.FractionBelow(100 * kNanosPerMilli) >= 0.95
                  ? "met"
                  : "MISSED");
  if (opt.validate) {
    std::printf("unpredictable  %llu of %llu reads (%.3f%%)\n",
                static_cast<unsigned long long>(result.validation.unpredictable),
                static_cast<unsigned long long>(result.validation.reads_checked),
                result.validation.StalePercent());
  }
  std::printf("write sessions %llu (avg %.2f Q-restarts among %llu restarted, max %llu)\n",
              static_cast<unsigned long long>(result.restarts.write_sessions),
              result.restarts.AvgRestarts(),
              static_cast<unsigned long long>(result.restarts.restarted_sessions),
              static_cast<unsigned long long>(result.restarts.max_q_restarts));
  std::printf("\ncache server:\n%s", net::FormatStats(server).c_str());
  return 0;
}
