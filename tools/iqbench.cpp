// iqbench: command-line driver for the BG workload over any client design.
//
//   iqbench [--technique=invalidate|refresh|incremental]
//           [--consistency=none|cas|read-lease|iq]
//           [--placement=prior|inside]
//           [--members=N] [--friends=N] [--threads=N] [--seconds=S]
//           [--mix=0.1|1|10] [--seed=N] [--warm] [--no-validate]
//           [--db-read-us=N] [--db-write-us=N] [--db-commit-us=N]
//           [--lease-ms=N] [--eager-delete]
//
// Prints a one-screen report: throughput, latency percentiles, restart
// statistics, unpredictable-read percentage, and cache-server counters.
//
// Remote mode — drive one or more running iqcached instances over TCP
// instead of an in-process server:
//
//   iqbench --connect=host:port[,host:port,...] [--threads=N] [--seconds=S]
//           [--mix=PCT] [--seed=N]
//
// With one endpoint each thread opens its own connection; with several, each
// thread builds its own ChannelPool (one pipelined connection per endpoint)
// and routes every key through a ShardedBackend consistent-hash ring, so the
// instances form one sharded cache tier. Reads hit a small keyspace, writes
// run the full QaRead/SaR refresh protocol against shared counters. At the
// end the counters must exactly equal the number of committed increments —
// any lost lease, protocol desync, or mis-routed fan-out fails the run
// (exit 1).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/oplog.h"
#include "core/iq_server.h"
#include "core/sharded_backend.h"
#include "bg/workload.h"
#include "casql/casql.h"
#include "net/channel.h"
#include "net/channel_pool.h"
#include "net/remote_backend.h"
#include "net/server.h"
#include "net/tcp_channel.h"
#include "util/backoff.h"
#include "util/histogram.h"
#include "util/rng.h"

using namespace iq;

namespace {

struct Options {
  casql::Technique technique = casql::Technique::kRefresh;
  casql::Consistency consistency = casql::Consistency::kIQ;
  casql::LeasePlacement placement = casql::LeasePlacement::kInsideTxn;
  bg::MemberId members = 1000;
  int friends = 10;
  int threads = 16;
  double seconds = 3.0;
  double mix = 1.0;
  std::uint64_t seed = 42;
  bool warm = false;
  bool validate = true;
  Nanos db_read = 30 * kNanosPerMicro;
  Nanos db_write = 60 * kNanosPerMicro;
  Nanos db_commit = 60 * kNanosPerMicro;
  Nanos lease_lifetime = 10 * kNanosPerSec;
  bool deferred_delete = true;
  /// Near cache (DESIGN.md §4.10): validity interval (ms) the server
  /// grants with every clean IQget hit, and the client-side near-cache
  /// capacity in entries. --near-ttl-ms > 0 enables both ends; repeat
  /// reads inside the interval are served locally with zero round trips.
  long long near_ttl_ms = 0;
  std::size_t near_cap = 4096;
  std::string connect;  // host:port of a running iqcached; empty = in-process
  /// Remote mode: connect/read/write deadline per socket operation. Bounds
  /// how long any request can block on a dead or wedged server.
  int timeout_ms = 2000;
  /// Online staleness audit: fraction of reads re-checked against ground
  /// truth. Any detected stale read fails the run (exit 1).
  double audit_rate = 0.0;
  /// Client-side op log for the offline checker (tools/iqcheck): every
  /// client-visible read/write/commit/abort is appended here and dumped to
  /// this file at the end of the run. Empty = off.
  std::string oplog;
  /// In-process mode: dump the server's lease trace (TRACE_INFO header +
  /// TRACE lines, iqcheck --trace format) to this file after the run.
  std::string trace_out;
  /// In-process mode: per-shard lease-trace ring capacity. Size it above
  /// the run's event count or iqcheck will refuse to certify (ring wrap).
  std::size_t trace_capacity = 1024;
  /// Remote mode: Zipfian skew (theta) for counter/data key selection;
  /// 0 = uniform. Hot keys concentrate lease contention for the checker's
  /// scenario matrix (theta 0.99 ~ YCSB's default skew).
  double zipf = 0.0;
  /// Remote mode: write counters via buffered IQDelta + a re-read under
  /// the session's own Q lease (the own-update visibility probe,
  /// Section 4.2.2) instead of the QaRead/SaR refresh path.
  bool rmw_delta = false;
  /// Remote mode: fraction of write sessions that update TWO counters
  /// under one session (two Q leases, one commit) — multi-key sessions
  /// for the checker's scenario matrix.
  double multikey_rate = 0.0;
};

bool StartsWith(const char* arg, const char* prefix, const char** value) {
  std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *value = arg + n;
  return true;
}

[[noreturn]] void Usage(const char* bad) {
  std::fprintf(stderr, "iqbench: bad argument '%s'\n", bad);
  std::fprintf(stderr,
               "usage: iqbench [--technique=invalidate|refresh|incremental]\n"
               "               [--consistency=none|cas|read-lease|iq]\n"
               "               [--placement=prior|inside] [--members=N]\n"
               "               [--friends=N] [--threads=N] [--seconds=S]\n"
               "               [--mix=0.1|1|10] [--seed=N] [--warm]\n"
               "               [--no-validate] [--db-read-us=N]\n"
               "               [--db-write-us=N] [--db-commit-us=N]\n"
               "               [--lease-ms=N] [--eager-delete]\n"
               "               [--near-ttl-ms=N] [--near-cap=N]\n"
               "               [--audit-rate=F]\n"
               "               [--oplog=FILE] [--trace-out=FILE]\n"
               "               [--trace-capacity=N]\n"
               "       iqbench --connect=host:port[,host:port,...]\n"
               "               [--threads=N] [--seconds=S] [--mix=PCT]\n"
               "               [--seed=N] [--timeout-ms=N] [--audit-rate=F]\n"
               "               [--near-ttl-ms=N] [--near-cap=N]\n"
               "               [--oplog=FILE] [--zipf=THETA]\n"
               "               [--rmw=sar|delta] [--multikey-rate=F]\n"
               "(--near-ttl-ms in remote mode requires the server to run with\n"
               " a matching --near-validity-ms; grants are server-side)\n");
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    const char* arg = argv[i];
    if (StartsWith(arg, "--technique=", &v)) {
      if (std::strcmp(v, "invalidate") == 0) {
        opt.technique = casql::Technique::kInvalidate;
      } else if (std::strcmp(v, "refresh") == 0) {
        opt.technique = casql::Technique::kRefresh;
      } else if (std::strcmp(v, "incremental") == 0) {
        opt.technique = casql::Technique::kIncremental;
      } else {
        Usage(arg);
      }
    } else if (StartsWith(arg, "--consistency=", &v)) {
      if (std::strcmp(v, "none") == 0) {
        opt.consistency = casql::Consistency::kNone;
      } else if (std::strcmp(v, "cas") == 0) {
        opt.consistency = casql::Consistency::kCas;
      } else if (std::strcmp(v, "read-lease") == 0) {
        opt.consistency = casql::Consistency::kReadLease;
      } else if (std::strcmp(v, "iq") == 0) {
        opt.consistency = casql::Consistency::kIQ;
      } else {
        Usage(arg);
      }
    } else if (StartsWith(arg, "--placement=", &v)) {
      if (std::strcmp(v, "prior") == 0) {
        opt.placement = casql::LeasePlacement::kPriorToTxn;
      } else if (std::strcmp(v, "inside") == 0) {
        opt.placement = casql::LeasePlacement::kInsideTxn;
      } else {
        Usage(arg);
      }
    } else if (StartsWith(arg, "--members=", &v)) {
      opt.members = std::atoll(v);
    } else if (StartsWith(arg, "--friends=", &v)) {
      opt.friends = std::atoi(v);
    } else if (StartsWith(arg, "--threads=", &v)) {
      opt.threads = std::atoi(v);
    } else if (StartsWith(arg, "--seconds=", &v)) {
      opt.seconds = std::atof(v);
    } else if (StartsWith(arg, "--mix=", &v)) {
      opt.mix = std::atof(v);
    } else if (StartsWith(arg, "--seed=", &v)) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (std::strcmp(arg, "--warm") == 0) {
      opt.warm = true;
    } else if (std::strcmp(arg, "--no-validate") == 0) {
      opt.validate = false;
    } else if (StartsWith(arg, "--db-read-us=", &v)) {
      opt.db_read = std::atoll(v) * kNanosPerMicro;
    } else if (StartsWith(arg, "--db-write-us=", &v)) {
      opt.db_write = std::atoll(v) * kNanosPerMicro;
    } else if (StartsWith(arg, "--db-commit-us=", &v)) {
      opt.db_commit = std::atoll(v) * kNanosPerMicro;
    } else if (StartsWith(arg, "--lease-ms=", &v)) {
      opt.lease_lifetime = std::atoll(v) * kNanosPerMilli;
    } else if (std::strcmp(arg, "--eager-delete") == 0) {
      opt.deferred_delete = false;
    } else if (StartsWith(arg, "--near-ttl-ms=", &v)) {
      opt.near_ttl_ms = std::atoll(v);
    } else if (StartsWith(arg, "--near-cap=", &v)) {
      opt.near_cap = static_cast<std::size_t>(std::atoll(v));
    } else if (StartsWith(arg, "--connect=", &v)) {
      opt.connect = v;
    } else if (StartsWith(arg, "--timeout-ms=", &v)) {
      opt.timeout_ms = std::atoi(v);
    } else if (StartsWith(arg, "--audit-rate=", &v)) {
      opt.audit_rate = std::atof(v);
    } else if (StartsWith(arg, "--oplog=", &v)) {
      opt.oplog = v;
    } else if (StartsWith(arg, "--trace-out=", &v)) {
      opt.trace_out = v;
    } else if (StartsWith(arg, "--trace-capacity=", &v)) {
      opt.trace_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (StartsWith(arg, "--zipf=", &v)) {
      opt.zipf = std::atof(v);
    } else if (StartsWith(arg, "--rmw=", &v)) {
      if (std::strcmp(v, "sar") == 0) {
        opt.rmw_delta = false;
      } else if (std::strcmp(v, "delta") == 0) {
        opt.rmw_delta = true;
      } else {
        Usage(arg);
      }
    } else if (StartsWith(arg, "--multikey-rate=", &v)) {
      opt.multikey_rate = std::atof(v);
    } else {
      Usage(arg);
    }
  }
  return opt;
}

// ---- remote mode ------------------------------------------------------------

constexpr int kRemoteCounters = 8;
constexpr int kRemoteDataKeys = 64;

/// One client thread's view of the remote tier: one reconnecting pipelined
/// connection per endpoint, a RemoteBackend per connection, and (for >1
/// endpoint) a ShardedBackend routing over them. All threads use the same
/// shard names (the endpoint labels), so every thread's ring agrees on key
/// placement. The stack survives a server kill: the channel fails fast and
/// reconnects lazily, and the router's circuit breaker keeps the healthy
/// shards unaffected while the dead one heals.
struct RemoteStack {
  std::unique_ptr<net::ChannelPool> pool;
  std::vector<std::unique_ptr<net::RemoteBackend>> backends;
  std::unique_ptr<ShardedBackend> router;
  KvsBackend* backend = nullptr;  // router, or the single backend

  static std::unique_ptr<RemoteStack> Connect(
      const std::vector<net::Endpoint>& endpoints, int timeout_ms,
      std::string* error) {
    auto stack = std::make_unique<RemoteStack>();
    net::ChannelPool::Config pool_cfg;
    pool_cfg.channel.channel.connect_timeout_ms = timeout_ms;
    pool_cfg.channel.channel.io_timeout_ms = timeout_ms;
    // A shard may be mid-restart when a worker (re)builds its stack; let
    // its channel come up "down" and heal through backoff.
    pool_cfg.require_initial_connect = false;
    stack->pool = net::ChannelPool::Connect(endpoints, pool_cfg, error);
    if (!stack->pool) return nullptr;
    std::vector<ShardedBackend::Shard> shards;
    for (std::size_t i = 0; i < stack->pool->size(); ++i) {
      stack->backends.push_back(
          std::make_unique<net::RemoteBackend>(stack->pool->channel(i)));
      net::ReconnectingChannel* channel = &stack->pool->channel(i);
      shards.push_back({net::Name(stack->pool->endpoint(i)),
                        stack->backends.back().get(), 1,
                        [channel] {
                          return net::ParseIQStats(
                              net::RemoteCacheClient(*channel).Stats());
                        },
                        [channel] { return channel->reconnects(); },
                        [channel](std::size_t max_events) {
                          auto drain = net::RemoteCacheClient(*channel)
                                           .TraceWithInfo(max_events);
                          return drain ? std::move(drain->events)
                                       : std::vector<TraceEvent>{};
                        },
                        [channel] {
                          auto drain =
                              net::RemoteCacheClient(*channel).TraceWithInfo(1);
                          return drain && drain->has_info ? drain->info
                                                          : TraceInfo{};
                        }});
    }
    if (endpoints.size() == 1) {
      stack->backend = stack->backends[0].get();
    } else {
      stack->router = std::make_unique<ShardedBackend>(std::move(shards));
      stack->backend = stack->router.get();
    }
    return stack;
  }
};

/// Op-log append (no-op when log is null). The key is hashed here; value
/// hashes come pre-computed via check::OpValueHash.
void LogOp(check::OpLog* log, SessionId session, check::OpKind kind,
           const std::string& key,
           std::uint64_t value_hash = check::kNoValueHash) {
  if (log) log->Record(session, kind, TraceKeyHash(key), value_hash);
}

/// A failed lease request ends the logical session. Record which way it
/// died: transport_error when the transport (not a lease conflict) killed
/// it, abort otherwise — the offline checker treats both as session ends,
/// and the distinct kind lets fault-leg op logs be certified instead of
/// mis-reading a connection drop as a voluntary abort.
check::OpKind EndKind(bool transport_error) {
  return transport_error ? check::OpKind::kTransportError
                         : check::OpKind::kAbort;
}

/// One increment of a shared counter via the refresh protocol, retried
/// with exponential backoff across lease rejections AND transport failures
/// until it commits or `deadline` passes. Every session ends with
/// Commit/Abort so a routing backend can retire its per-shard session
/// state.
///
/// `tally` is the authoritative count of committed increments — the stand-in
/// for the RDBMS of a real CASQL deployment. It serves double duty: the
/// final balance check compares cache contents against it, and a KVS miss
/// under the Q lease (the cache server was restarted and lost the counter)
/// reseeds the key from it, exactly as a CASQL refresh would recompute the
/// value from the database.
///
/// `use_delta` switches the increment to a buffered IQDelta plus a re-read
/// under the session's own (still live) Q lease — the own-update
/// visibility probe: the server must replay the pending delta into the
/// re-read (Section 4.2.2), and the read_own op record lets iqcheck flag a
/// pre-delta value reappearing. A KVS miss still reseeds via SaR.
bool RemoteIncrement(KvsBackend& backend, const std::string& key,
                     std::atomic<long long>& tally, Nanos deadline, Rng& rng,
                     bool use_delta = false, check::OpLog* log = nullptr) {
  const Clock& clock = SteadyClock::Instance();
  ExponentialBackoff backoff(50 * kNanosPerMicro, 20 * kNanosPerMilli);
  for (int attempt = 0; clock.Now() < deadline; ++attempt) {
    SessionId session = backend.GenID();
    if (session == 0) {
      // Shard unreachable; back off while the channel reconnects.
      SleepFor(clock, backoff.DelayFor(attempt, rng));
      continue;
    }
    QaReadReply q = backend.QaRead(key, session);
    if (q.status != QaReadReply::Status::kGranted) {
      backend.Abort(session);
      LogOp(log, session,
            EndKind(q.status == QaReadReply::Status::kTransportError), key);
      SleepFor(clock, backoff.DelayFor(attempt, rng));
      continue;
    }
    LogOp(log, session,
          q.value ? check::OpKind::kReadHit : check::OpKind::kReadMiss, key,
          check::OpValueHash(q.value));
    if (use_delta && q.value) {
      DeltaOp delta;
      delta.kind = DeltaOp::Kind::kIncr;
      delta.amount = 1;
      QuarantineResult d = backend.IQDelta(session, key, delta);
      if (d != QuarantineResult::kGranted) {
        backend.Abort(session);
        LogOp(log, session, EndKind(d == QuarantineResult::kTransportError),
              key);
        SleepFor(clock, backoff.DelayFor(attempt, rng));
        continue;
      }
      LogOp(log, session, check::OpKind::kDelta, key);
      // Re-read under our own live Q lease: same session, so the server
      // hands back the value with our buffered delta replayed (no grant is
      // traced — we already hold the lease).
      QaReadReply own = backend.QaRead(key, session);
      if (own.status == QaReadReply::Status::kGranted) {
        LogOp(log, session, check::OpKind::kReadOwn, key,
              check::OpValueHash(own.value));
      }
      // Commit applies the buffered delta. Tally after the send, as the
      // SaR path does after its ack: the exposure window against a
      // mid-commit kill is the same sub-microsecond one noted below.
      backend.Commit(session);
      tally.fetch_add(1, std::memory_order_relaxed);
      LogOp(log, session, check::OpKind::kCommit, key);
      return true;
    }
    // The Q lease serializes writers, so at most one session reseeds a lost
    // counter at a time and concurrent increments still can't be lost.
    long long current =
        q.value ? std::atoll(q.value->c_str()) : tally.load();
    std::string next = std::to_string(current + 1);
    // Write intent logged BEFORE the install (check/oplog.h soundness rule).
    LogOp(log, session, check::OpKind::kWrite, key, check::OpValueHash(next));
    if (backend.SaR(key, std::string_view(next), q.token) ==
        StoreResult::kStored) {
      // Tally immediately after the ack: a kill between the ack and this
      // increment could strand one unseeded commit, but that window is
      // sub-microsecond against a kill cadence of seconds.
      tally.fetch_add(1, std::memory_order_relaxed);
      backend.Commit(session);
      LogOp(log, session, check::OpKind::kCommit, key);
      return true;
    }
    // SaR not acknowledged (lease expired/evicted, or the connection
    // dropped): the store did not commit, so it must not be counted —
    // release the session and retry.
    backend.Abort(session);
    LogOp(log, session, check::OpKind::kAbort, key);
    SleepFor(clock, backoff.DelayFor(attempt, rng));
  }
  return false;
}

/// One two-counter write session: increment `key_a` AND `key_b` under a
/// single session (two Q leases, one commit) — the multi-key leg of the
/// checker's scenario matrix. SaR stores-and-releases immediately, so each
/// counter is tallied after its own ack; an abort after the first ack
/// cannot undo it and the balance invariant still holds.
bool RemoteTransfer(KvsBackend& backend, const std::string& key_a,
                    std::atomic<long long>& tally_a, const std::string& key_b,
                    std::atomic<long long>& tally_b, Nanos deadline, Rng& rng,
                    check::OpLog* log) {
  const Clock& clock = SteadyClock::Instance();
  ExponentialBackoff backoff(50 * kNanosPerMicro, 20 * kNanosPerMilli);
  for (int attempt = 0; clock.Now() < deadline; ++attempt) {
    SessionId session = backend.GenID();
    if (session == 0) {
      SleepFor(clock, backoff.DelayFor(attempt, rng));
      continue;
    }
    QaReadReply qa = backend.QaRead(key_a, session);
    if (qa.status != QaReadReply::Status::kGranted) {
      backend.Abort(session);
      LogOp(log, session,
            EndKind(qa.status == QaReadReply::Status::kTransportError), key_a);
      SleepFor(clock, backoff.DelayFor(attempt, rng));
      continue;
    }
    LogOp(log, session,
          qa.value ? check::OpKind::kReadHit : check::OpKind::kReadMiss,
          key_a, check::OpValueHash(qa.value));
    QaReadReply qb = backend.QaRead(key_b, session);
    if (qb.status != QaReadReply::Status::kGranted) {
      // Second-lease rejection: abort releases the first lease too.
      backend.Abort(session);
      LogOp(log, session,
            EndKind(qb.status == QaReadReply::Status::kTransportError), key_b);
      SleepFor(clock, backoff.DelayFor(attempt, rng));
      continue;
    }
    LogOp(log, session,
          qb.value ? check::OpKind::kReadHit : check::OpKind::kReadMiss,
          key_b, check::OpValueHash(qb.value));
    std::string next_a = std::to_string(
        (qa.value ? std::atoll(qa.value->c_str()) : tally_a.load()) + 1);
    LogOp(log, session, check::OpKind::kWrite, key_a,
          check::OpValueHash(next_a));
    if (backend.SaR(key_a, std::string_view(next_a), qa.token) !=
        StoreResult::kStored) {
      backend.Abort(session);
      LogOp(log, session, check::OpKind::kAbort, key_a);
      SleepFor(clock, backoff.DelayFor(attempt, rng));
      continue;
    }
    tally_a.fetch_add(1, std::memory_order_relaxed);
    std::string next_b = std::to_string(
        (qb.value ? std::atoll(qb.value->c_str()) : tally_b.load()) + 1);
    LogOp(log, session, check::OpKind::kWrite, key_b,
          check::OpValueHash(next_b));
    if (backend.SaR(key_b, std::string_view(next_b), qb.token) ==
        StoreResult::kStored) {
      tally_b.fetch_add(1, std::memory_order_relaxed);
      backend.Commit(session);
      LogOp(log, session, check::OpKind::kCommit, key_b);
      return true;
    }
    backend.Abort(session);
    LogOp(log, session, check::OpKind::kAbort, key_b);
    SleepFor(clock, backoff.DelayFor(attempt, rng));
  }
  return false;
}

enum class AuditVerdict { kOk, kStale, kSkip };

/// Online staleness audit of one shared counter. A granted Q lease
/// serializes against the writers, so the value read under it must fall in
/// a bound derived from the tally of committed increments: every increment
/// tallied before the QaRead (t1) had its SaR acked first, and at most
/// `threads` acked increments can still be un-tallied by the time we load
/// t2 afterwards — so t1 <= value <= t2 + threads, or the cache lost or
/// invented an update. A KVS miss means a restarted shard dropped the
/// counter (reseeded by the next increment): no verdict.
AuditVerdict AuditRemoteCounter(KvsBackend& backend, const std::string& key,
                                std::atomic<long long>& tally, int threads,
                                check::OpLog* log) {
  SessionId session = backend.GenID();
  if (session == 0) return AuditVerdict::kSkip;
  long long t1 = tally.load();
  QaReadReply q = backend.QaRead(key, session);
  if (q.status != QaReadReply::Status::kGranted) {
    backend.Abort(session);
    LogOp(log, session,
          EndKind(q.status == QaReadReply::Status::kTransportError), key);
    return AuditVerdict::kSkip;
  }
  LogOp(log, session,
        q.value ? check::OpKind::kReadHit : check::OpKind::kReadMiss, key,
        check::OpValueHash(q.value));
  std::optional<long long> got;
  if (q.value) got = std::atoll(q.value->c_str());
  backend.SaR(key, std::nullopt, q.token);  // release, value left in place
  backend.Commit(session);
  LogOp(log, session, check::OpKind::kCommit, key);
  if (!got) return AuditVerdict::kSkip;
  long long t2 = tally.load();
  return (*got >= t1 && *got <= t2 + threads) ? AuditVerdict::kOk
                                              : AuditVerdict::kStale;
}

/// Data keys are never written after seeding, so any hit must return the
/// seeded constant; a miss is a restarted shard (no verdict).
AuditVerdict AuditRemoteDataKey(KvsBackend& backend, const std::string& key,
                                check::OpLog* log) {
  auto item = backend.Get(key);
  if (!item) {
    LogOp(log, 0, check::OpKind::kReadMiss, key);
    return AuditVerdict::kSkip;
  }
  LogOp(log, 0, check::OpKind::kReadHit, key, check::OpValueHash(item->value));
  return item->value == std::string(100, 'x') ? AuditVerdict::kOk
                                              : AuditVerdict::kStale;
}

int RunRemote(const Options& opt) {
  std::string error;
  std::vector<net::Endpoint> endpoints = net::ParseEndpoints(opt.connect, &error);
  if (endpoints.empty()) {
    std::fprintf(stderr, "iqbench: %s\n", error.c_str());
    return 1;
  }
  std::printf("iqbench: remote cache tier:");
  for (const net::Endpoint& ep : endpoints) {
    std::printf(" %s", net::Name(ep).c_str());
  }
  std::printf(" (%zu shard%s) | %d threads, %.1fs, %.1f%% writes\n",
              endpoints.size(), endpoints.size() == 1 ? "" : "s", opt.threads,
              opt.seconds, opt.mix);
  if (opt.zipf > 0 || opt.rmw_delta || opt.multikey_rate > 0) {
    std::printf("iqbench: zipf=%.2f rmw=%s multikey-rate=%.2f\n", opt.zipf,
                opt.rmw_delta ? "delta" : "sar", opt.multikey_rate);
  }

  check::OpLog op_log;
  check::OpLog* log = opt.oplog.empty() ? nullptr : &op_log;

  // Seed the keyspace through the routing stack: shared counters for the
  // write protocol, data keys for the read path. Seed records are logged
  // before the install, like write intents.
  {
    auto setup = RemoteStack::Connect(endpoints, opt.timeout_ms, &error);
    if (!setup) {
      std::fprintf(stderr, "iqbench: %s\n", error.c_str());
      return 1;
    }
    for (int i = 0; i < kRemoteCounters; ++i) {
      std::string key = "ctr:" + std::to_string(i);
      LogOp(log, 0, check::OpKind::kSeed, key, check::OpValueHash("0"));
      setup->backend->Set(key, "0");
    }
    for (int i = 0; i < kRemoteDataKeys; ++i) {
      std::string key = "data:" + std::to_string(i);
      LogOp(log, 0, check::OpKind::kSeed, key,
            check::OpValueHash(std::string(100, 'x')));
      setup->backend->Set(key, std::string(100, 'x'));
    }
  }

  // Key pickers: Zipfian skew (scrambled so hot ids spread over the space)
  // concentrates lease contention on a few hot counters. The generators
  // are stateless after construction and shared across threads.
  std::optional<ScrambledZipfian> ctr_zipf, data_zipf;
  if (opt.zipf > 0) {
    ctr_zipf.emplace(kRemoteCounters, opt.zipf);
    data_zipf.emplace(kRemoteDataKeys, opt.zipf);
  }
  auto pick_ctr = [&](Rng& rng) {
    return static_cast<int>(ctr_zipf ? ctr_zipf->Next(rng)
                                     : rng.NextUint64(kRemoteCounters));
  };
  auto pick_data = [&](Rng& rng) {
    return static_cast<int>(data_zipf ? data_zipf->Next(rng)
                                      : rng.NextUint64(kRemoteDataKeys));
  };

  std::vector<std::atomic<long long>> committed(kRemoteCounters);
  for (auto& c : committed) c.store(0);
  std::atomic<std::uint64_t> ops{0};
  std::atomic<bool> failed{false};
  // Fault-recovery evidence, harvested from each worker's own stack before it
  // exits: the settle-pass stack below connects fresh and would report zeros
  // even after a mid-run shard kill.
  std::atomic<std::uint64_t> worker_reconnects{0};
  std::atomic<std::uint64_t> worker_transport_errors{0};
  std::atomic<std::uint64_t> worker_shard_trips{0};
  std::atomic<std::uint64_t> worker_shard_recoveries{0};
  std::atomic<std::uint64_t> audit_samples{0};
  std::atomic<std::uint64_t> audit_stale{0};
  std::atomic<std::uint64_t> audit_skipped{0};
  // Near-cache tally merged from every worker's client-local cache at exit
  // (the client side of the server's near_grants STAT counter).
  std::atomic<std::uint64_t> near_hits{0};
  std::atomic<std::uint64_t> near_expired{0};
  std::atomic<std::uint64_t> near_invalidated{0};
  std::atomic<std::uint64_t> near_evictions{0};
  std::vector<LatencyHistogram> latencies(opt.threads);
  const Clock& clock = SteadyClock::Instance();
  Nanos deadline = clock.Now() + static_cast<Nanos>(opt.seconds * kNanosPerSec);

  std::vector<std::thread> threads;
  for (int t = 0; t < opt.threads; ++t) {
    threads.emplace_back([&, t] {
      std::string conn_error;
      auto stack = RemoteStack::Connect(endpoints, opt.timeout_ms, &conn_error);
      if (!stack) {
        std::fprintf(stderr, "iqbench: thread %d: %s\n", t, conn_error.c_str());
        failed.store(true);
        return;
      }
      // Single-endpoint reads keep the one-round-trip multi-key get; a
      // sharded tier reads per key (each key lives on one server).
      std::unique_ptr<net::RemoteCacheClient> multi;
      if (endpoints.size() == 1) {
        multi = std::make_unique<net::RemoteCacheClient>(stack->pool->channel(0));
      }
      // Near-cache read stack: data-key reads go through an IQSession so
      // server validity grants (iqcached --near-validity-ms) populate a
      // client-local near cache; repeat reads inside the granted interval
      // are served with zero round trips (DESIGN.md §4.10). The counter
      // write path keeps the raw QaRead/SaR protocol — no grants there.
      std::unique_ptr<IQClient> near_client;
      std::unique_ptr<IQSession> near_session;
      if (opt.near_ttl_ms > 0) {
        IQClient::Config near_cfg;
        near_cfg.near_capacity = opt.near_cap;
        near_cfg.seed = opt.seed + static_cast<std::uint64_t>(t) * 31;
        near_client = std::make_unique<IQClient>(*stack->backend, near_cfg);
        near_session = near_client->NewSession();
      }
      Rng rng(opt.seed + static_cast<std::uint64_t>(t) * 7919);
      std::uint64_t local_ops = 0;
      while (clock.Now() < deadline) {
        Nanos start = clock.Now();
        if (rng.NextUint64(10000) < static_cast<std::uint64_t>(opt.mix * 100)) {
          int idx = pick_ctr(rng);
          // A false return means the run deadline arrived while the
          // counter's shard was unreachable — not an error: the increment
          // never committed, so it is not tallied and the balance holds.
          if (opt.multikey_rate > 0 && rng.NextBool(opt.multikey_rate)) {
            int jdx = pick_ctr(rng);
            while (jdx == idx) jdx = static_cast<int>(rng.NextUint64(kRemoteCounters));
            // Order the keys so contending transfers always acquire in the
            // same direction (no circular rejection livelock).
            if (jdx < idx) std::swap(idx, jdx);
            RemoteTransfer(*stack->backend, "ctr:" + std::to_string(idx),
                           committed[idx], "ctr:" + std::to_string(jdx),
                           committed[jdx], deadline, rng, log);
          } else {
            RemoteIncrement(*stack->backend, "ctr:" + std::to_string(idx),
                            committed[idx], deadline, rng, opt.rmw_delta, log);
          }
        } else if (opt.audit_rate > 0 && rng.NextBool(opt.audit_rate)) {
          // Audit instead of a plain read: one shared counter under a Q
          // lease and one never-written data key.
          int idx = pick_ctr(rng);
          AuditVerdict v =
              AuditRemoteCounter(*stack->backend, "ctr:" + std::to_string(idx),
                                 committed[idx], opt.threads, log);
          AuditVerdict d = AuditRemoteDataKey(
              *stack->backend, "data:" + std::to_string(pick_data(rng)), log);
          for (AuditVerdict verdict : {v, d}) {
            switch (verdict) {
              case AuditVerdict::kOk: ++audit_samples; break;
              case AuditVerdict::kStale:
                ++audit_samples;
                ++audit_stale;
                break;
              case AuditVerdict::kSkip: ++audit_skipped; break;
            }
          }
        } else if (near_session) {
          for (int k = 0; k < 3; ++k) {
            std::string key = "data:" + std::to_string(pick_data(rng));
            ClientGetResult got = near_session->Get(key);
            if (got.status == ClientGetResult::Status::kHit) {
              LogOp(log, 0, check::OpKind::kReadHit, key,
                    check::OpValueHash(got.value));
            } else {
              // Data keys are never recomputed (a miss means a restarted
              // shard); drop the I lease so other readers are not blocked.
              if (got.status == ClientGetResult::Status::kMissRecompute) {
                near_session->DropLease(key);
              }
              LogOp(log, 0, check::OpKind::kReadMiss, key);
            }
          }
        } else if (multi) {
          std::vector<std::string> keys;
          for (int k = 0; k < 3; ++k) {
            keys.push_back("data:" + std::to_string(pick_data(rng)));
          }
          auto items = multi->MultiGet(keys);
          for (std::size_t k = 0; log && k < items.size(); ++k) {
            if (items[k]) {
              LogOp(log, 0, check::OpKind::kReadHit, keys[k],
                    check::OpValueHash(items[k]->value));
            } else {
              LogOp(log, 0, check::OpKind::kReadMiss, keys[k]);
            }
          }
        } else {
          for (int k = 0; k < 3; ++k) {
            std::string key = "data:" + std::to_string(pick_data(rng));
            auto item = stack->backend->Get(key);
            if (item) {
              LogOp(log, 0, check::OpKind::kReadHit, key,
                    check::OpValueHash(item->value));
            } else {
              LogOp(log, 0, check::OpKind::kReadMiss, key);
            }
          }
        }
        latencies[t].Record(clock.Now() - start);
        ++local_ops;
      }
      ops.fetch_add(local_ops, std::memory_order_relaxed);
      if (near_client != nullptr && near_client->near_cache() != nullptr) {
        NearCache::Stats ns = near_client->near_cache()->stats();
        near_hits += ns.hits;
        near_expired += ns.expired;
        near_invalidated += ns.invalidated;
        near_evictions += ns.evictions;
      }
      near_session.reset();  // release any I leases before the stack dies
      for (std::size_t i = 0; i < stack->pool->size(); ++i) {
        worker_reconnects += stack->pool->channel(i).reconnects();
        worker_transport_errors += stack->pool->channel(i).transport_errors();
      }
      if (stack->router) {
        auto rs = stack->router->router_stats();
        worker_shard_trips += rs.shard_trips;
        worker_shard_recoveries += rs.shard_recoveries;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (failed.load()) {
    std::fprintf(stderr, "iqbench: a worker lost its connection\n");
    return 1;
  }

  // Exact IQ counter balance: every committed increment — and nothing
  // else — must be visible, wherever the ring placed each counter. A lost
  // lease, a desynced pipeline, or a mis-routed fan-out shows up here as a
  // mismatch.
  auto check = RemoteStack::Connect(endpoints, opt.timeout_ms, &error);
  if (!check) {
    std::fprintf(stderr, "iqbench: %s\n", error.c_str());
    return 1;
  }
  // Settle pass: one more increment per counter through the Q-lease path.
  // A counter whose shard was killed and restarted is missing from the
  // restarted server; the settle increment reseeds it from the tally (the
  // same recovery every worker performs), so the read below checks real
  // end-to-end recovery rather than special-casing restarted shards. The
  // deadline also gives a just-restarted shard time to accept connections.
  Rng settle_rng(opt.seed ^ 0xC0FFEE);
  Nanos settle_deadline = clock.Now() + 10 * kNanosPerSec;
  long long total_commits = 0;
  bool balanced = true;
  for (int i = 0; i < kRemoteCounters; ++i) {
    std::string key = "ctr:" + std::to_string(i);
    if (!RemoteIncrement(*check->backend, key, committed[i], settle_deadline,
                         settle_rng, /*use_delta=*/false, log)) {
      std::fprintf(stderr, "iqbench: %s unreachable during settle pass\n",
                   key.c_str());
      balanced = false;
      continue;
    }
    auto item = check->backend->Get(key);
    if (item) {
      LogOp(log, 0, check::OpKind::kReadHit, key,
            check::OpValueHash(item->value));
    }
    long long expect = committed[i].load();
    long long got = item ? std::atoll(item->value.c_str()) : -1;
    total_commits += expect;
    if (got != expect) {
      std::fprintf(stderr, "iqbench: ctr:%d = %lld, expected %lld\n", i, got,
                   expect);
      balanced = false;
    }
  }

  LatencyHistogram merged;
  for (const auto& h : latencies) merged.Merge(h);
  double elapsed = opt.seconds;
  std::printf("throughput     %12.0f ops/sec (%llu ops, %lld increments)\n",
              static_cast<double>(ops.load()) / elapsed,
              static_cast<unsigned long long>(ops.load()), total_commits);
  std::printf("latency        %s\n", merged.Summary().c_str());
  std::printf("counter balance %s\n", balanced ? "exact" : "VIOLATED");
  if (opt.audit_rate > 0) {
    std::printf("audit          %llu samples, stale_reads_detected=%llu, "
                "%llu skipped\n",
                static_cast<unsigned long long>(audit_samples.load()),
                static_cast<unsigned long long>(audit_stale.load()),
                static_cast<unsigned long long>(audit_skipped.load()));
  }
  if (opt.near_ttl_ms > 0) {
    std::printf("near cache     %llu hits (zero round trips), %llu expired, "
                "%llu invalidated, %llu evictions\n",
                static_cast<unsigned long long>(near_hits.load()),
                static_cast<unsigned long long>(near_expired.load()),
                static_cast<unsigned long long>(near_invalidated.load()),
                static_cast<unsigned long long>(near_evictions.load()));
  }
  std::printf(
      "fault recovery  %llu transport errors, %llu reconnects, "
      "%llu trips, %llu recoveries (worker-side)\n",
      static_cast<unsigned long long>(worker_transport_errors.load()),
      static_cast<unsigned long long>(worker_reconnects.load()),
      static_cast<unsigned long long>(worker_shard_trips.load()),
      static_cast<unsigned long long>(worker_shard_recoveries.load()));
  if (check->router) {
    std::printf("\ncache tier (aggregated + per-shard):\n%s",
                check->router->FormatStats().c_str());
  } else {
    std::printf("\ncache server:\n%s",
                net::RemoteCacheClient(check->pool->channel(0)).Stats().c_str());
  }
  if (log && !op_log.DumpToFile(opt.oplog)) {
    std::fprintf(stderr, "iqbench: cannot write op log '%s'\n",
                 opt.oplog.c_str());
    return 1;
  }
  return balanced && audit_stale.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Parse(argc, argv);
  if (!opt.connect.empty()) return RunRemote(opt);

  std::printf("iqbench: %s / %s / %s | %lld members, %d threads, %.1fs, %.1f%% writes\n",
              casql::ToString(opt.technique), casql::ToString(opt.consistency),
              casql::ToString(opt.placement),
              static_cast<long long>(opt.members), opt.threads, opt.seconds,
              opt.mix);

  sql::Database::Config db_cfg;
  db_cfg.read_delay = opt.db_read;
  db_cfg.write_delay = opt.db_write;
  db_cfg.commit_delay = opt.db_commit;
  sql::Database db(db_cfg);

  bg::GraphConfig graph;
  graph.members = opt.members;
  graph.friends_per_member = opt.friends;
  graph.resources_per_member = 2;
  graph.comments_per_resource = 2;

  std::printf("loading social graph...\n");
  bg::CreateBgTables(db);
  std::size_t rows = bg::LoadGraph(db, graph);
  std::printf("  %zu rows loaded\n", rows);
  bg::ActionPools pools;
  pools.SeedFromGraph(graph);

  IQServer::Config server_cfg;
  server_cfg.lease_lifetime = opt.lease_lifetime;
  server_cfg.deferred_delete = opt.deferred_delete;
  server_cfg.trace_capacity = opt.trace_capacity;
  server_cfg.near_validity = opt.near_ttl_ms * kNanosPerMilli;
  IQServer server(CacheStore::Config{}, server_cfg);

  check::OpLog op_log;
  casql::CasqlConfig cfg;
  cfg.technique = opt.technique;
  cfg.consistency = opt.consistency;
  cfg.placement = opt.placement;
  cfg.audit_rate = opt.audit_rate;
  if (opt.near_ttl_ms > 0) cfg.client.near_capacity = opt.near_cap;
  if (!opt.oplog.empty()) cfg.op_log = &op_log;
  casql::CasqlSystem system(db, server, cfg);

  if (opt.warm) {
    std::printf("warming the cache...\n");
    bg::WarmCache(system, graph);
  }

  bg::WorkloadConfig wl;
  wl.mix = bg::MixForWritePercent(opt.mix);
  wl.threads = opt.threads;
  wl.duration = static_cast<Nanos>(opt.seconds * kNanosPerSec);
  wl.seed = opt.seed;
  wl.validate = opt.validate;
  wl.seed_validator_from_db = true;

  std::printf("running...\n\n");
  bg::WorkloadResult result = bg::RunWorkload(system, pools, graph, wl);

  std::printf("throughput     %12.0f actions/sec (%llu actions, %llu no-ops)\n",
              result.Throughput(),
              static_cast<unsigned long long>(result.actions),
              static_cast<unsigned long long>(result.failed_actions));
  std::printf("latency        %s\n", result.latency.Summary().c_str());
  std::printf("SLA (95%%<100ms) %s\n",
              result.latency.FractionBelow(100 * kNanosPerMilli) >= 0.95
                  ? "met"
                  : "MISSED");
  if (opt.validate) {
    std::printf("unpredictable  %llu of %llu reads (%.3f%%)\n",
                static_cast<unsigned long long>(result.validation.unpredictable),
                static_cast<unsigned long long>(result.validation.reads_checked),
                result.validation.StalePercent());
  }
  std::printf("write sessions %llu (avg %.2f Q-restarts among %llu restarted, max %llu)\n",
              static_cast<unsigned long long>(result.restarts.write_sessions),
              result.restarts.AvgRestarts(),
              static_cast<unsigned long long>(result.restarts.restarted_sessions),
              static_cast<unsigned long long>(result.restarts.max_q_restarts));
  if (opt.audit_rate > 0) {
    casql::AuditStats audit = system.audit_stats();
    std::printf("audit          %llu samples, stale_reads_detected=%llu, "
                "%llu skipped, %llu bounded\n",
                static_cast<unsigned long long>(audit.samples),
                static_cast<unsigned long long>(audit.stale_reads_detected),
                static_cast<unsigned long long>(audit.skipped),
                static_cast<unsigned long long>(audit.bounded));
  }
  if (NearCache* near = system.client().near_cache()) {
    NearCache::Stats ns = near->stats();
    std::printf("near cache     %llu hits (zero round trips), %llu expired, "
                "%llu invalidated, %llu evictions (%zu entries)\n",
                static_cast<unsigned long long>(ns.hits),
                static_cast<unsigned long long>(ns.expired),
                static_cast<unsigned long long>(ns.invalidated),
                static_cast<unsigned long long>(ns.evictions), near->size());
  }
  std::printf("\ncache server:\n%s", net::FormatStats(server).c_str());
  // Artifacts for the offline checker: the client op log and the server's
  // lease trace with its completeness header (iqcheck --oplog / --trace).
  if (!opt.oplog.empty() && !op_log.DumpToFile(opt.oplog)) {
    std::fprintf(stderr, "iqbench: cannot write op log '%s'\n",
                 opt.oplog.c_str());
    return 1;
  }
  if (!opt.trace_out.empty()) {
    std::string text = FormatTraceInfo(server.TraceInfoTotal());
    text += FormatTraceEvents(
        server.TraceSnapshot(std::numeric_limits<std::size_t>::max()));
    std::ofstream out(opt.trace_out, std::ios::binary | std::ios::trunc);
    out << text;
    if (!out.good()) {
      std::fprintf(stderr, "iqbench: cannot write trace '%s'\n",
                   opt.trace_out.c_str());
      return 1;
    }
  }
  // In IQ mode the audit has zero false positives, so any detection is a
  // real consistency bug: fail the run. Baselines are expected to be stale
  // (that is the paper's point), so they report without failing.
  if (opt.consistency == casql::Consistency::kIQ &&
      system.audit_stats().stale_reads_detected != 0) {
    return 1;
  }
  return 0;
}
