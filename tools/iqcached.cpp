// iqcached: the standalone IQ cache server — IQServer behind the TCP front
// end, speaking the memcached/IQ text protocol. The networked deployment of
// the paper's IQ-Twemcached: run this on one host, point iqbench --connect
// (or any memcached text-protocol client) at it from others.
//
//   iqcached [--port=N] [--host=A] [--workers=N] [--affinity] [--pin-cores]
//            [--lease-ms=N] [--near-validity-ms=N] [--eager-delete]
//            [--cache-mb=N] [--sweep-ms=N]
//            [--trace-capacity=N] [--trace-dump[=N]]
//            [--opt-value-cap=N] [--no-opt-reads]
//
// --workers defaults to the host's hardware concurrency. --affinity turns on
// the shard-affinity (thread-per-core) execution mode (DESIGN.md §4.7):
// CacheStore shards are partitioned across the workers, single-key commands
// run on their shard's owner, and cross-shard work is forwarded through
// per-worker mailboxes. Off = shared mode (any worker executes anything),
// the A/B baseline. --pin-cores additionally pins worker i to CPU core
// (i % hardware_concurrency) so each partition stays cache-resident.
//
// --near-validity-ms grants every clean IQget hit a validity interval of N
// milliseconds, letting clients with a near cache (iqbench --near-cap)
// serve repeat reads locally with zero round trips (DESIGN.md §4.10).
// 0 (the default) disables grants. Note: a nonzero value disables the
// optimistic read path — grants must be recorded under the shard lock.
//
// --opt-value-cap bounds the value size (bytes) served by the mutex-free
// optimistic read path (DESIGN.md §4.6); larger values fall back to the
// locked path. --no-opt-reads (= --opt-value-cap=0) disables the optimistic
// path entirely — the A/B baseline where every read takes its shard mutex.
//
// Runs until SIGINT/SIGTERM, then prints the server's STAT lines — lifetime
// totals plus the windowed deltas/rates since startup (the STAT twin of the
// `metrics` wire verb).
//
// --sweep-ms starts a background thread that calls SweepExpired() on that
// period, deleting keys whose leases expired while no request touched them
// (crashed clients). 0 disables the thread; expired leases are then only
// collected on access or by an explicit `sweep` wire command.
//
// --trace-capacity sizes the per-shard lease-event trace ring (0 disables
// tracing; also disables the `trace` wire verb). --trace-dump[=N] prints the
// newest N (default 512) lease-trace events at shutdown — the flight
// recorder for post-mortems of a failed consistency check.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/iq_server.h"
#include "net/server.h"
#include "net/tcp_server.h"

using namespace iq;

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

bool StartsWith(const char* arg, const char* prefix, const char** value) {
  std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *value = arg + n;
  return true;
}

[[noreturn]] void Usage(const char* bad) {
  std::fprintf(stderr, "iqcached: bad argument '%s'\n", bad);
  std::fprintf(stderr,
               "usage: iqcached [--port=N] [--host=A] [--workers=N]\n"
               "                [--affinity] [--pin-cores]\n"
               "                [--lease-ms=N] [--near-validity-ms=N]\n"
               "                [--eager-delete] [--cache-mb=N]\n"
               "                [--sweep-ms=N] [--trace-capacity=N]\n"
               "                [--trace-dump[=N]] [--opt-value-cap=N]\n"
               "                [--no-opt-reads]\n"
               "                [--mutate=own-update|overlap-q] (TEST ONLY)\n"
               "(--workers defaults to the hardware concurrency and must be "
               ">= 1)\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  net::TcpServer::Config net_cfg;
  net_cfg.port = 11211;
  // One worker per hardware thread by default — the natural shape for both
  // modes, and exactly one partition per core under --affinity.
  unsigned hw = std::thread::hardware_concurrency();
  net_cfg.workers = hw > 0 ? static_cast<int>(hw) : 1;
  IQServer::Config server_cfg;
  CacheStore::Config store_cfg;
  long long sweep_ms = 1000;
  std::size_t trace_dump = 0;  // 0 = no dump at shutdown
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    const char* arg = argv[i];
    if (StartsWith(arg, "--port=", &v)) {
      net_cfg.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (StartsWith(arg, "--host=", &v)) {
      net_cfg.host = v;
    } else if (StartsWith(arg, "--workers=", &v)) {
      net_cfg.workers = std::atoi(v);
      if (net_cfg.workers <= 0) Usage(arg);
    } else if (std::strcmp(arg, "--affinity") == 0) {
      net_cfg.affinity = true;
    } else if (std::strcmp(arg, "--pin-cores") == 0) {
      net_cfg.pin_cores = true;
    } else if (StartsWith(arg, "--lease-ms=", &v)) {
      server_cfg.lease_lifetime = std::atoll(v) * kNanosPerMilli;
    } else if (StartsWith(arg, "--near-validity-ms=", &v)) {
      server_cfg.near_validity = std::atoll(v) * kNanosPerMilli;
    } else if (std::strcmp(arg, "--eager-delete") == 0) {
      server_cfg.deferred_delete = false;
    } else if (StartsWith(arg, "--cache-mb=", &v)) {
      store_cfg.memory_budget_bytes =
          static_cast<std::size_t>(std::atoll(v)) * 1024 * 1024;
    } else if (StartsWith(arg, "--sweep-ms=", &v)) {
      sweep_ms = std::atoll(v);
    } else if (StartsWith(arg, "--opt-value-cap=", &v)) {
      store_cfg.optimistic_value_cap = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(arg, "--no-opt-reads") == 0) {
      store_cfg.optimistic_value_cap = 0;
    } else if (StartsWith(arg, "--trace-capacity=", &v)) {
      server_cfg.trace_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(arg, "--trace-dump") == 0) {
      trace_dump = 512;
    } else if (StartsWith(arg, "--trace-dump=", &v)) {
      trace_dump = static_cast<std::size_t>(std::atoll(v));
    } else if (StartsWith(arg, "--mutate=", &v)) {
      // Deliberately re-introduce a historical consistency bug (TEST ONLY;
      // see IQServer::Config). CI runs iqcheck against a mutated server to
      // prove the checker actually catches these.
      if (std::strcmp(v, "own-update") == 0) {
        server_cfg.mutate_own_update_invisible = true;
      } else if (std::strcmp(v, "overlap-q") == 0) {
        server_cfg.mutate_overlap_q = true;
      } else {
        Usage(arg);
      }
    } else {
      Usage(arg);
    }
  }

  IQServer server(store_cfg, server_cfg);
  net::TcpServer tcp(server, net_cfg);
  std::string error;
  if (!tcp.Start(&error)) {
    std::fprintf(stderr, "iqcached: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "iqcached: listening on %s:%u (%d workers, %s mode%s, sweep %lldms)\n",
      net_cfg.host.c_str(), tcp.port(), net_cfg.workers,
      net_cfg.affinity ? "affinity" : "shared",
      net_cfg.pin_cores ? ", pinned" : "", sweep_ms);
  std::fflush(stdout);

  // Prime the process-lifetime metrics window so the shutdown report (and a
  // single `metrics` scrape) gets rates over a real interval.
  server.WindowedStats();

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  // Lease reaper: without it, keys quarantined by clients that died (or
  // were partitioned away) sit dead until some request happens to touch
  // them. The sweep turns lease expiry into an upper bound on how long a
  // crashed writer can keep a key out of the cache.
  std::thread sweeper;
  if (sweep_ms > 0) {
    sweeper = std::thread([&server, sweep_ms] {
      while (!g_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sweep_ms));
        server.SweepExpired();
      }
    });
  }

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (sweeper.joinable()) sweeper.join();

  // Snapshot the wire counters before Stop() tears the workers down.
  std::string stats = net::FormatStats(server);
  tcp.AppendWireStats(stats);
  // Windowed deltas/rates since the last scrape (or since startup when no
  // `metrics` client ever connected).
  stats += net::FormatWindowedStats(server.WindowedStats());
  tcp.Stop();
  std::printf("iqcached: shutting down\n%s", stats.c_str());
  if (trace_dump > 0) {
    // TRACE_INFO first, as on the wire, so a captured dump is iqcheck
    // --trace ingestible (and shows whether the ring wrapped).
    std::printf("iqcached: lease trace (newest %zu)\n%s%s", trace_dump,
                FormatTraceInfo(server.TraceInfoTotal()).c_str(),
                FormatTraceEvents(server.TraceSnapshot(trace_dump)).c_str());
  }
  return 0;
}
