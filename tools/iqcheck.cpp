// iqcheck: offline execution-history consistency checker (DESIGN.md §4.8).
//
// Ingests one or more drained lease traces (files of TRACE lines with their
// TRACE_INFO completeness header, or live servers drained over the wire)
// plus the client-side op log written by iqbench --oplog / casql, replays
// them through check::CheckHistory, and prints the verdict:
//
//   iqcheck --oplog=run.oplog --trace=server.trace
//   iqcheck --oplog=run.oplog --connect=127.0.0.1:11211 [--connect=...]
//
//   --trace=FILE        trace dump (one TraceSource per file; repeatable)
//   --connect=HOST:PORT drain a live server's trace via the `trace` verb
//                       (one TraceSource per endpoint; repeatable)
//   --oplog=FILE        the client op log (OPLOG_INFO + OP lines)
//   --max-events=N      wire drain size per endpoint (default 1<<20)
//   --save-traces=PFX   archive each wire-drained trace as PFX-<endpoint>.txt
//                       (iqcheck --trace ingestible; CI uploads these as the
//                       post-mortem artifact when a check leg fails)
//   --allow-drops       wrapped/short traces warn instead of flagging
//                       (certification still requires a complete history)
//   --require-quiescent flag leases still live at end-of-history
//   --quiet             print only the verdict line
//
// Exit status: 0 = certified (clean AND complete); 1 = anomalies found or
// history incomplete; 2 = usage / I/O / parse error. CI treats 0 as "this
// run provably respected the IQ protocol and the SI session axioms".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/checker.h"
#include "check/oplog.h"
#include "net/channel.h"
#include "net/tcp_channel.h"
#include "util/trace_ring.h"

using namespace iq;

namespace {

bool StartsWith(const char* arg, const char* prefix, const char** value) {
  std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *value = arg + n;
  return true;
}

[[noreturn]] void Usage(const char* bad) {
  if (bad) std::fprintf(stderr, "iqcheck: bad argument '%s'\n", bad);
  std::fprintf(stderr,
               "usage: iqcheck [--trace=FILE]... [--connect=HOST:PORT]...\n"
               "               [--oplog=FILE] [--max-events=N]\n"
               "               [--save-traces=PREFIX]\n"
               "               [--allow-drops] [--require-quiescent]\n"
               "               [--quiet]\n"
               "(at least one --trace/--connect or an --oplog is required)\n");
  std::exit(2);
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return in.good() || in.eof();
}

/// "host:port" -> (host, port); false on malformed input.
bool SplitEndpoint(const std::string& spec, std::string* host,
                   std::uint16_t* port) {
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return false;
  }
  long p = std::atol(spec.c_str() + colon + 1);
  if (p <= 0 || p > 65535) return false;
  *host = spec.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> trace_files;
  std::vector<std::string> endpoints;
  std::string oplog_file;
  std::string save_prefix;
  std::uint64_t max_events = 1ull << 20;
  check::CheckerOptions options;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    const char* arg = argv[i];
    if (StartsWith(arg, "--trace=", &v)) {
      trace_files.emplace_back(v);
    } else if (StartsWith(arg, "--connect=", &v)) {
      endpoints.emplace_back(v);
    } else if (StartsWith(arg, "--oplog=", &v)) {
      oplog_file = v;
    } else if (StartsWith(arg, "--max-events=", &v)) {
      max_events = static_cast<std::uint64_t>(std::atoll(v));
    } else if (StartsWith(arg, "--save-traces=", &v)) {
      save_prefix = v;
    } else if (std::strcmp(arg, "--allow-drops") == 0) {
      options.allow_drops = true;
    } else if (std::strcmp(arg, "--require-quiescent") == 0) {
      options.require_quiescent = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      Usage(arg);
    }
  }
  if (trace_files.empty() && endpoints.empty() && oplog_file.empty()) {
    Usage(nullptr);
  }

  std::vector<check::TraceSource> sources;

  for (const std::string& path : trace_files) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "iqcheck: cannot read trace file '%s'\n",
                   path.c_str());
      return 2;
    }
    check::TraceSource src;
    src.name = path;
    if (!ParseTraceEvents(text, &src.events, &src.info, &src.has_info)) {
      std::fprintf(stderr, "iqcheck: malformed trace in '%s'\n", path.c_str());
      return 2;
    }
    sources.push_back(std::move(src));
  }

  for (const std::string& spec : endpoints) {
    std::string host;
    std::uint16_t port = 0;
    if (!SplitEndpoint(spec, &host, &port)) {
      std::fprintf(stderr, "iqcheck: bad endpoint '%s' (want host:port)\n",
                   spec.c_str());
      return 2;
    }
    std::string error;
    auto channel = net::TcpChannel::Connect(host, port, &error);
    if (!channel) {
      std::fprintf(stderr, "iqcheck: connect %s: %s\n", spec.c_str(),
                   error.c_str());
      return 2;
    }
    net::RemoteCacheClient client(*channel);
    auto drain = client.TraceWithInfo(max_events);
    if (!drain) {
      std::fprintf(stderr, "iqcheck: trace drain from %s failed\n",
                   spec.c_str());
      return 2;
    }
    check::TraceSource src;
    src.name = spec;
    src.events = std::move(drain->events);
    src.info = drain->info;
    src.has_info = drain->has_info;
    if (!save_prefix.empty()) {
      // Archive exactly what was drained, header first, so the file is
      // itself --trace ingestible for offline post-mortems.
      std::string fname = spec;
      for (char& c : fname) {
        if (c == ':' || c == '/') c = '-';
      }
      std::string path = save_prefix + "-" + fname + ".txt";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (src.has_info) out << FormatTraceInfo(src.info);
      out << FormatTraceEvents(src.events);
      if (!out) {
        std::fprintf(stderr, "iqcheck: cannot write '%s'\n", path.c_str());
        return 2;
      }
    }
    sources.push_back(std::move(src));
  }

  std::vector<check::OpRecord> ops;
  if (!oplog_file.empty()) {
    std::string text;
    if (!ReadFile(oplog_file, &text)) {
      std::fprintf(stderr, "iqcheck: cannot read op log '%s'\n",
                   oplog_file.c_str());
      return 2;
    }
    if (!check::ParseOpLog(text, &ops)) {
      std::fprintf(stderr, "iqcheck: malformed op log '%s'\n",
                   oplog_file.c_str());
      return 2;
    }
  }

  check::CheckReport report = check::CheckHistory(sources, ops, options);
  std::string summary = report.Summary();
  if (quiet) {
    // First line of the summary is the verdict.
    std::size_t eol = summary.find('\n');
    summary = summary.substr(0, eol == std::string::npos ? summary.size()
                                                         : eol + 1);
  }
  std::fputs(summary.c_str(), stdout);
  return report.certified() ? 0 : 1;
}
